(* Bechamel benchmarks: one Test.make per evaluation figure of the paper
   (timing the regeneration of one representative sweep point of it) plus
   micro-benchmarks for every subsystem the figures are built from.

     dune exec bench/main.exe
*)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Fixtures shared across iterations                                    *)
(* ------------------------------------------------------------------ *)

let instance ~seed ~granularity =
  let rng = Rng.create ~seed in
  Spec.generate Spec.default ~rng ~granularity ()

let inst_g1 = instance ~seed:1 ~granularity:1.0

let problem ~eps inst =
  Types.problem ~dag:inst.Paper_workload.dag ~platform:inst.Paper_workload.plat
    ~eps
    ~throughput:(Paper_workload.throughput ~eps)

let prob_e1 = problem ~eps:1 inst_g1
let prob_e3 = problem ~eps:3 inst_g1

let mapping_e1 =
  match Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e1 with
  | Ok m -> m
  | Error _ -> failwith "bench fixture: R-LTF failed"

let mapping_e3 =
  match Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e3 with
  | Ok m -> m
  | Error _ -> failwith "bench fixture: R-LTF failed"

(* A figure "point": schedule + measure both algorithms on one fresh graph
   at one granularity, exactly what the sweep repeats 60 times per point. *)
let figure_point ~eps ~crashes ~granularity seed =
  let config =
    {
      (Fig_common.quick ~eps ~crashes) with
      Fig_common.graphs_per_point = 1;
      granularities = [ granularity ];
      seed;
    }
  in
  Fig_common.collect config

(* ------------------------------------------------------------------ *)
(* The benchmarks                                                       *)
(* ------------------------------------------------------------------ *)

let figure_tests =
  [
    Test.make ~name:"fig3a-point (eps=1 bounds)"
      (Staged.stage (fun () -> figure_point ~eps:1 ~crashes:0 ~granularity:1.0 11));
    Test.make ~name:"fig3b-point (eps=1, 1 crash)"
      (Staged.stage (fun () -> figure_point ~eps:1 ~crashes:1 ~granularity:1.0 12));
    Test.make ~name:"fig3c-point (eps=1 overhead)"
      (Staged.stage (fun () -> figure_point ~eps:1 ~crashes:1 ~granularity:0.6 13));
    Test.make ~name:"fig4a-point (eps=3 bounds)"
      (Staged.stage (fun () -> figure_point ~eps:3 ~crashes:0 ~granularity:1.0 14));
    Test.make ~name:"fig4b-point (eps=3, 2 crashes)"
      (Staged.stage (fun () -> figure_point ~eps:3 ~crashes:2 ~granularity:1.0 15));
    Test.make ~name:"fig4c-point (eps=3 overhead)"
      (Staged.stage (fun () -> figure_point ~eps:3 ~crashes:2 ~granularity:0.6 16));
    Test.make ~name:"fig1+fig2 worked examples"
      (Staged.stage (fun () ->
           ignore (Paper_examples.fig1 ());
           ignore (Paper_examples.fig2 ())));
    Test.make ~name:"baselines-row (8 heuristics, 1 graph)"
      (Staged.stage (fun () ->
           let inst = instance ~seed:17 ~granularity:1.0 in
           let dag = inst.Paper_workload.dag and plat = inst.Paper_workload.plat in
           let throughput = Paper_workload.throughput ~eps:0 in
           ignore (Heft.mapping ~throughput dag plat);
           ignore (Etf.mapping ~throughput dag plat);
           ignore (Hary.mapping dag plat ~throughput);
           ignore (Expert.mapping dag plat ~throughput);
           ignore (Tda.mapping dag plat ~throughput);
           ignore (Stdp.mapping dag plat ~throughput);
           ignore (Wmsh.mapping dag plat ~throughput);
           ignore (Hoang.mapping ~iterations:10 dag plat)));
    Test.make ~name:"symmetric-point (Section 6 searches)"
      (Staged.stage (fun () ->
           let inst = instance ~seed:18 ~granularity:1.0 in
           let dag = inst.Paper_workload.dag and plat = inst.Paper_workload.plat in
           ignore
             (Symmetric.max_throughput ~iterations:6 ~dag ~platform:plat ~eps:1
                ~latency_bound:500.0 ())));
  ]

(* A 12-trial sweep (3 granularities x 4 graphs) timed at -j 1/2/4:
   the collect results are bit-identical across the three, only the
   wall-clock may differ.  Pool setup/teardown is included, as in the
   CLI's `-j N` path. *)
let parallel_collect_config =
  {
    (Fig_common.quick ~eps:1 ~crashes:1) with
    Fig_common.graphs_per_point = 4;
    granularities = [ 0.6; 1.0; 1.4 ];
  }

let parallel_tests =
  List.map
    (fun jobs ->
      Test.make
        ~name:(Printf.sprintf "collect 12 trials, -j %d" jobs)
        (Staged.stage (fun () ->
             Fig_common.collect ~jobs parallel_collect_config)))
    [ 1; 2; 4 ]

let algorithm_tests =
  [
    Test.make ~name:"LTF schedule (v=100, m=20, eps=1)"
      (Staged.stage (fun () -> Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e1));
    Test.make ~name:"R-LTF schedule (v=100, m=20, eps=1)"
      (Staged.stage (fun () -> Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e1));
    Test.make ~name:"LTF schedule (eps=3)"
      (Staged.stage (fun () -> Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e3));
    Test.make ~name:"R-LTF schedule (eps=3)"
      (Staged.stage (fun () -> Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e3));
  ]

let substrate_tests =
  [
    Test.make ~name:"workload instance generation"
      (Staged.stage (fun () -> instance ~seed:19 ~granularity:1.0));
    Test.make ~name:"one-port event simulation (1 item)"
      (Staged.stage (fun () -> Engine.run mapping_e1));
    Test.make ~name:"one-port event simulation (20 items)"
      (Staged.stage (fun () -> Engine.run ~n_items:20 mapping_e1));
    Test.make ~name:"stage-synchronous latency"
      (Staged.stage (fun () ->
           Stage_latency.latency mapping_e1 ~throughput:0.05));
    Test.make ~name:"crash replay (1 failure)"
      (Staged.stage (fun () -> Engine.latency ~failed:[ 0 ] mapping_e1));
    Test.make ~name:"exhaustive tolerance validation (eps=3)"
      (Staged.stage (fun () -> Validate.fault_tolerance mapping_e3));
    Test.make ~name:"exact width (Dilworth, v=100)"
      (Staged.stage (fun () -> Width.exact inst_g1.Paper_workload.dag));
    Test.make ~name:"post-failure recovery (1 crash)"
      (Staged.stage (fun () -> Recovery.restore mapping_e1 ~failed:[ 0 ]));
    Test.make ~name:"platform cost minimization"
      (Staged.stage (fun () ->
           Platform_cost.minimize ~dag:inst_g1.Paper_workload.dag
             ~platform:inst_g1.Paper_workload.plat ~eps:1
             ~throughput:(Paper_workload.throughput ~eps:1)
             ()));
    Test.make ~name:"exact optimum (9 tasks, m=4)"
      (Staged.stage
         (let plat =
            Platform.homogeneous ~name:"bench" ~m:4 ~speed:1.0 ~bandwidth:1.0 ()
          in
          let rng = Rng.create ~seed:23 in
          let dag =
            Calibrate.calibrated (Random_dag.layered ~rng ~tasks:9 ()) plat
              ~granularity:1.0
          in
          fun () ->
            Optimal.minimum_stages ~dag ~platform:plat ~throughput:0.25 ()));
    Test.make ~name:"mapping round trip (print + parse)"
      (Staged.stage (fun () ->
           Mapping_io.parse ~dag:inst_g1.Paper_workload.dag
             ~platform:inst_g1.Paper_workload.plat
             (Mapping_io.print mapping_e1)));
  ]

(* ------------------------------------------------------------------ *)
(* Incremental scheduling state: before/after pairs                     *)
(* ------------------------------------------------------------------ *)

(* Each pair re-enacts a placement-phase operation the way the engine did
   it before this change (full rescans, tree sets, validated sub-platform
   builds) and the way it does it now (incremental loads, bitsets, direct
   restriction).  The "before" closures reproduce the legacy code paths on
   today's primitives, so both sides run on the same inputs. *)

let throughput_e1 = Paper_workload.throughput ~eps:1

let replicas_e1 =
  let acc = ref [] in
  Mapping.iter mapping_e1 (fun r -> acc := r :: !acc);
  List.rev !acc

(* Built once, outside the timed region; with_tentative restores it
   verbatim after every probe. *)
let loads_e1 = Loads.of_mapping mapping_e1

let probe_legacy () =
  (* One candidate evaluation = one full O(replicas · degree) rescan plus
     an O(p) max scan, for every replica of the mapping. *)
  List.fold_left
    (fun acc (_ : Replica.t) ->
      let l = Loads.of_mapping mapping_e1 in
      let best = ref 0.0 in
      Array.iteri
        (fun u _ -> best := Float.max !best (Loads.cycle_time l u))
        l.Loads.sigma;
      acc +. !best)
    0.0 replicas_e1

let probe_incremental () =
  (* One candidate evaluation = one O(degree) tentative charge and an O(1)
     cached max read. *)
  List.fold_left
    (fun acc r ->
      acc +. Loads.with_tentative loads_e1 mapping_e1 r Loads.max_cycle_time)
    0.0 replicas_e1

let strict_check_legacy () =
  (* R-LTF's strict finish before ?loads: meets_throughput rewalks the
     mapping, then the worst-processor scan rewalks it again. *)
  let ok = Metrics.meets_throughput mapping_e1 ~throughput:throughput_e1 in
  let loads = Loads.of_mapping mapping_e1 in
  let worst = ref 0 in
  Array.iteri
    (fun u _ ->
      if Loads.cycle_time loads u > Loads.cycle_time loads !worst then worst := u)
    loads.Loads.sigma;
  (ok, !worst)

let strict_check_shared () =
  let loads = Loads.of_mapping mapping_e1 in
  let ok = Metrics.meets_throughput ~loads mapping_e1 ~throughput:throughput_e1 in
  let worst = ref 0 in
  Array.iteri
    (fun u _ ->
      if Loads.cycle_time loads u > Loads.cycle_time loads !worst then worst := u)
    loads.Loads.sigma;
  (ok, !worst)

(* Kill-set workload shaped like the scheduler's: ~(ε+1)·m support sets
   over m = 20 processors, probed pairwise for disjointness and merged. *)
module Iset = Set.Make (Int)

let kill_set_lists =
  let rng = Rng.create ~seed:31 in
  List.init 64 (fun _ -> List.init (1 + Rng.int rng 8) (fun _ -> Rng.int rng 20))

let kill_isets = List.map Iset.of_list kill_set_lists
let kill_bitsets = List.map Bitset.of_list kill_set_lists

let killset_ops_set () =
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc b ->
          if Iset.disjoint a b then acc + Iset.cardinal (Iset.union a b)
          else acc)
        acc kill_isets)
    0 kill_isets

let killset_ops_bitset () =
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc b ->
          if Bitset.disjoint a b then acc + Bitset.cardinal (Bitset.union a b)
          else acc)
        acc kill_bitsets)
    0 kill_bitsets

let plat_e1 = inst_g1.Paper_workload.plat
let kept17 = Array.init 17 Fun.id

let restrict_legacy () =
  (* What Platform_cost.restrict used to do per elimination probe: rebuild
     the sub-platform through create's O(m²) validation and double copy. *)
  let speeds = Array.map (Platform.speed plat_e1) kept17 in
  let bw =
    Array.init (Array.length kept17) (fun i ->
        Array.init (Array.length kept17) (fun j ->
            if i = j then 1.0
            else Platform.bandwidth plat_e1 kept17.(i) kept17.(j)))
  in
  Platform.create ~name:(Platform.name plat_e1 ^ "-subset") ~speeds
    ~bandwidth:bw ()

let restrict_direct () = Platform.restrict plat_e1 kept17

let opaque f () = ignore (Sys.opaque_identity (f ()))

let sched_pairs : (string * (unit -> unit) * (unit -> unit)) list =
  [
    ( "placement probe (loads per candidate)",
      opaque probe_legacy,
      opaque probe_incremental );
    ( "strict-mode throughput check",
      opaque strict_check_legacy,
      opaque strict_check_shared );
    ( "kill-set disjoint/union/cardinal",
      opaque killset_ops_set,
      opaque killset_ops_bitset );
    ("sub-platform restriction", opaque restrict_legacy, opaque restrict_direct);
  ]

let sched_tests =
  List.concat_map
    (fun (name, before, after) ->
      [
        Test.make ~name:(name ^ " [before]") (Staged.stage before);
        Test.make ~name:(name ^ " [after]") (Staged.stage after);
      ])
    sched_pairs

(* ------------------------------------------------------------------ *)
(* Compiled simulator: before/after pairs                               *)
(* ------------------------------------------------------------------ *)

(* Each pair plays the same simulation scenario the way every caller did
   it before the compile/run split — Engine.run pays the full per-mapping
   flattening on every invocation — and the way the hot callers do it now,
   replaying a program compiled once outside the timed region.  Both sides
   produce bit-identical results. *)

let sim_instance ~seed ~tasks =
  let rng = Rng.create ~seed in
  let spec = { Paper_workload.default_spec with tasks_range = (tasks, tasks) } in
  Spec.generate (Spec.paper spec) ~rng ~granularity:1.0 ()

let sim_mapping ~seed ~tasks ~eps =
  let inst = sim_instance ~seed ~tasks in
  let prob =
    Types.problem ~dag:inst.Paper_workload.dag
      ~platform:inst.Paper_workload.plat ~eps
      ~throughput:(Paper_workload.throughput ~eps)
  in
  match Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob with
  | Ok m -> m
  | Error _ -> failwith "bench fixture: R-LTF failed on sim workload"

let sim_small = sim_mapping ~seed:41 ~tasks:50 ~eps:1
let sim_medium = sim_mapping ~seed:42 ~tasks:100 ~eps:1
let sim_large = sim_mapping ~seed:43 ~tasks:150 ~eps:2

let sim_small_prog = Engine.compile sim_small
let sim_medium_prog = Engine.compile sim_medium
let sim_large_prog = Engine.compile sim_large

let crash_draws_per_mapping = 20

(* Legacy shape: every draw recompiles, exactly what the pre-split
   engine paid per Engine.run.  The recompile is spelled out explicitly
   — an [Of_mapping] source now memoizes through [Program_cache], so it
   no longer reproduces the legacy cost. *)
let crash_draws_legacy () =
  let rng = Rng.create ~seed:47 in
  for _ = 1 to crash_draws_per_mapping do
    ignore
      (Crash.estimate ~source:(Crash.Of_program (Engine.compile sim_medium))
         ~method_:(Crash.Sampled { crashes = 1; draws = 1; rng })
         ())
  done

let crash_draws_compiled () =
  let rng = Rng.create ~seed:47 in
  ignore
    (Crash.estimate ~source:(Crash.Of_program sim_medium_prog)
       ~method_:
         (Crash.Sampled { crashes = 1; draws = crash_draws_per_mapping; rng })
       ())

(* The draw loop before and after the run-state arena: both sides replay
   the same failure draws against the same compiled program; the before
   side allocates every slab (and the message log) per draw, the after
   side reuses one arena with the log off — the per-draw shape
   [Crash.estimate] now takes. *)
let arena_draws = 200
let sim_medium_procs = Platform.size (Mapping.platform sim_medium)

let draw_loop_slabs () =
  let rng = Rng.create ~seed:67 in
  for _ = 1 to arena_draws do
    ignore
      (Engine.run_compiled ~failed:[ Rng.int rng sim_medium_procs ]
         sim_medium_prog)
  done

let draw_loop_arena () =
  let rng = Rng.create ~seed:67 in
  let state = Engine.Run_state.create sim_medium_prog in
  for _ = 1 to arena_draws do
    ignore
      (Engine.latency_compiled ~state
         ~failed:[ Rng.int rng sim_medium_procs ]
         sim_medium_prog)
  done

(* The cache-hit path: what revisiting a mapping's program costs with and
   without the content-keyed cache.  The after side digests and looks up
   instead of compiling (the cache is warmed by the measurement loop
   itself). *)
let cache_lookup_compile () = ignore (Engine.compile sim_medium)
let cache_lookup_cached () = ignore (Program_cache.program sim_medium)

let epochs_per_mapping = 8

let epochs_run run_one =
  (* The operations layer's shape: one short resumed run per epoch against
     an unchanged mapping. *)
  let clock = ref 0.0 in
  for _ = 1 to epochs_per_mapping do
    ignore
      (run_one ~snapshot:{ Engine.clock = !clock; down = [] } ~n_items:4);
    clock := !clock +. 100.0
  done

(* Accuracy-matched reliability pair: a Monte-Carlo defeat estimate
   needs on the order of 1000 draws to resolve a probability to a couple
   of percent, while the calculus computes it exactly in one analysis.
   Both sides answer the same question about the same mapping. *)
let reliability_mc_draws = 1000
let reliability_crashes = 2
let sim_medium_plan = Stage_latency.compile sim_medium

let defeat_rate_mc () =
  let rng = Rng.create ~seed:53 in
  let stats =
    Stage_latency.mean_crash_latency_stats_of_plan
      ~rand_int:(fun b -> Rng.int rng b)
      ~crashes:reliability_crashes ~runs:reliability_mc_draws
      ~throughput:(Paper_workload.throughput ~eps:1)
      sim_medium_plan
  in
  Crash.defeat_rate stats

let defeat_rate_exact () =
  let t = Reliability.analyze ~max_cut_card:reliability_crashes sim_medium in
  Reliability.defeat_probability t
    (Reliability.Uniform_crashes reliability_crashes)

let degraded_stats_mc () =
  let rng = Rng.create ~seed:59 in
  Stage_latency.mean_crash_latency_stats_of_plan
    ~rand_int:(fun b -> Rng.int rng b)
    ~crashes:reliability_crashes ~runs:reliability_mc_draws
    ~throughput:(Paper_workload.throughput ~eps:1)
    sim_medium_plan

let degraded_stats_exact () =
  Stage_latency.exact_crash_latency_stats ~crashes:reliability_crashes
    ~throughput:(Paper_workload.throughput ~eps:1)
    sim_medium

let sim_pairs : (string * (unit -> unit) * (unit -> unit)) list =
  [
    ( "single fault-free run (small, v=50)",
      opaque (fun () -> Engine.run sim_small),
      opaque (fun () -> Engine.run_compiled sim_small_prog) );
    ( "single fault-free run (medium, v=100)",
      opaque (fun () -> Engine.run sim_medium),
      opaque (fun () -> Engine.run_compiled sim_medium_prog) );
    ( "single fault-free run (large, v=150, eps=2)",
      opaque (fun () -> Engine.run sim_large),
      opaque (fun () -> Engine.run_compiled sim_large_prog) );
    ( "single crashy run (medium, mid-stream fail-stop)",
      opaque (fun () ->
          Engine.run ~n_items:4 ~timed_failures:[ (3, 120.0) ] sim_medium),
      opaque (fun () ->
          Engine.run_compiled ~n_items:4
            ~timed_failures:[ (3, 120.0) ]
            sim_medium_prog) );
    ( "20 crash draws, one mapping (compile-once)",
      opaque crash_draws_legacy,
      opaque crash_draws_compiled );
    ( "200 failure draws, one program (arena reuse)",
      opaque draw_loop_slabs,
      opaque draw_loop_arena );
    ( "program for a revisited mapping (cache hit)",
      opaque cache_lookup_compile,
      opaque cache_lookup_cached );
    ( "8 resumed epochs, one mapping (stream ops shape)",
      opaque (fun () ->
          epochs_run (fun ~snapshot ~n_items ->
              Engine.run ~snapshot ~n_items sim_medium)),
      opaque (fun () ->
          epochs_run (fun ~snapshot ~n_items ->
              Engine.run_compiled ~snapshot ~n_items sim_medium_prog)) );
    ( "defeat probability (1000 MC draws vs calculus)",
      opaque defeat_rate_mc,
      opaque defeat_rate_exact );
    ( "degraded latency stats (1000 MC draws vs calculus)",
      opaque degraded_stats_mc,
      opaque degraded_stats_exact );
  ]

(* Open-system overhead: the same scenarios through the closed path and
   through the open-system machinery.  These are NOT before/after pairs —
   the open path does strictly more bookkeeping (occupancy accounting,
   admission control), so the gate is a bounded overhead ratio
   (open_ns / closed_ns <= 1.3), not a speedup >= 1. *)
let overhead_items = 20

let overhead_closed () =
  Engine.run_compiled ~n_items:overhead_items sim_medium_prog

(* The degenerate point: identical event sequence, so the ratio isolates
   the cost of the queue/admission machinery itself. *)
let overhead_open_degenerate () =
  Engine.simulate
    ~config:
      (Engine.Run.open_ ~n_items:overhead_items
         (Arrival.Deterministic
            { period = Engine.program_period sim_medium_prog }))
    sim_medium_prog

(* A realistic open run: Poisson arrivals at the sustainable rate through
   a bounded queue (slightly different event sequence, same item count). *)
let overhead_open_bounded () =
  Engine.simulate
    ~config:
      (Engine.Run.open_ ~queue_bound:4 ~rng:(Rng.create ~seed:61)
         ~n_items:overhead_items
         (Arrival.Poisson
            { rate = 1.0 /. Engine.program_period sim_medium_prog }))
    sim_medium_prog

(* The fault machinery armed but inert: a transient window in the far
   future forces the instrumented dispatch path (per-attempt window and
   hash checks, attempt bookkeeping) while no fault ever fires, so the
   event sequence is identical to the closed baseline.  This is the
   price of carrying the fault model when it does nothing — gated at
   1.05x, much tighter than the open-system machinery's 1.3x. *)
let overhead_faults_inert () =
  Engine.simulate
    ~config:
      (Engine.Run.with_faults
         {
           Faults.none with
           Faults.transient =
             {
               Faults.Transient.none with
               Faults.Transient.exec_windows = [ (0, 1e12, 1e12 +. 1.0) ];
             };
         }
         (Engine.Run.closed ~n_items:overhead_items ()))
    sim_medium_prog

let fault_overhead_gate = 1.05

(* (name, gate, closed thunk, open/instrumented thunk): [gate] is the
   per-entry ratio ceiling recorded next to the measurement and enforced
   by [--check-sim-json]. *)
let overhead_pairs : (string * float * (unit -> unit) * (unit -> unit)) list =
  [
    ( "open-system degenerate run (medium, 20 items)",
      1.3,
      opaque overhead_closed,
      opaque overhead_open_degenerate );
    ( "open-system bounded Poisson run (medium, 20 items)",
      1.3,
      opaque overhead_closed,
      opaque overhead_open_bounded );
    ( "fault machinery armed, no faults (medium, 20 items)",
      fault_overhead_gate,
      opaque overhead_closed,
      opaque overhead_faults_inert );
  ]

let sim_tests =
  List.concat_map
    (fun (name, before, after) ->
      [
        Test.make ~name:(name ^ " [before]") (Staged.stage before);
        Test.make ~name:(name ^ " [after]") (Staged.stage after);
      ])
    sim_pairs

(* ------------------------------------------------------------------ *)
(* Counter deltas                                                       *)
(* ------------------------------------------------------------------ *)

(* Work-per-run to go with the time-per-run above: run each
   representative operation once under the observability layer and print
   what a single invocation costs in placement probes, heap events, etc.
   Recording stays off for the timed groups so they measure the same
   code path as production runs. *)
let counter_deltas () =
  Printf.printf "## Counter deltas (Stream_obs, one invocation each)\n%!";
  Obs.set_enabled true;
  let delta name f =
    Obs.reset ();
    ignore (f ());
    let counters =
      List.sort compare (Obs.Registry.counters (Obs.snapshot ()))
    in
    Printf.printf "%s\n" name;
    List.iter
      (fun (k, v) -> if v > 0 then Printf.printf "    %-32s %d\n" k v)
      counters
  in
  delta "LTF schedule (v=100, m=20, eps=1)" (fun () ->
      Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e1);
  delta "R-LTF schedule (eps=3)" (fun () ->
      Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e3);
  delta "one-port event simulation (20 items)" (fun () ->
      Engine.run ~n_items:20 mapping_e1);
  delta "fig3a sweep point (1 graph)" (fun () ->
      figure_point ~eps:1 ~crashes:0 ~granularity:1.0 11);
  Obs.set_enabled false;
  Obs.reset ();
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let bench_cfg () =
  Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()

(* ns/run OLS estimates of one Test.make, as (label, ns) pairs. *)
let estimates cfg test =
  let measures = Instance.[ monotonic_clock ] in
  let results = Benchmark.all cfg measures test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols Instance.monotonic_clock results in
  Hashtbl.fold
    (fun label result acc ->
      match Analyze.OLS.estimates result with
      | Some [ ns_per_run ] -> (label, Some ns_per_run) :: acc
      | _ -> (label, None) :: acc)
    analyzed []

let run_group name tests =
  Printf.printf "## %s\n%!" name;
  let cfg = bench_cfg () in
  List.iter
    (fun test ->
      List.iter
        (fun (label, est) ->
          match est with
          | Some ns_per_run ->
              Printf.printf "%-44s %14.0f ns/run (%10.3f ms)\n%!" label
                ns_per_run (ns_per_run /. 1e6)
          | None -> Printf.printf "%-44s (no estimate)\n%!" label)
        (estimates cfg test))
    tests;
  print_newline ()

(* One OLS estimate can land on a scheduler hiccup; the committed JSON
   numbers are the median of three independent estimates, so a single
   outlier repetition can no longer push a recorded pair across its
   gate. *)
let median3 f =
  match List.sort compare [ f (); f (); f () ] with
  | [ _; m; _ ] -> m
  | _ -> assert false

let measure_median cfg name thunk =
  median3 (fun () ->
      match estimates cfg (Test.make ~name (Staged.stage thunk)) with
      | [ (_, Some ns) ] -> ns
      | _ -> nan)

(* Measure a list of (name, before, after) pairs and render them as the
   perf-trajectory JSON pair objects shared by --sched-json and
   --sim-json. *)
let measure_pairs cfg pairs =
  let measure = measure_median cfg in
  List.map
    (fun (name, before, after) ->
      let before_ns = measure (name ^ " [before]") before in
      let after_ns = measure (name ^ " [after]") after in
      Printf.printf "%-48s %12.0f -> %10.0f ns/run (%5.1fx)\n%!" name before_ns
        after_ns (before_ns /. after_ns);
      Obs.Json.Obj
        [
          ("name", Obs.Json.Str name);
          ("before_ns", Obs.Json.Num before_ns);
          ("after_ns", Obs.Json.Num after_ns);
          ("speedup", Obs.Json.Num (before_ns /. after_ns));
        ])
    pairs

(* ------------------------------------------------------------------ *)
(* Large-instance scale points                                           *)
(* ------------------------------------------------------------------ *)

(* The huge-family scale points (up to v = 10⁶ tasks on p = 10³
   processors) are hours of compute, so they are not re-measured here:
   the scaling experiment (`experiments.exe scaling`) writes them to
   results/fig-scaling.csv, and the JSON emitters embed that file as a
   "scale" section when it is present.  The check gates then validate
   the committed points without re-running anything heavy. *)
let default_scale_csv = "results/fig-scaling.csv"

let scale_rows path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rows = ref [] in
    (try
       ignore (input_line ic) (* header *);
       while true do
         match String.split_on_char ',' (input_line ic) with
         | v :: m :: eps :: algo :: sched_s :: sim_s :: _ ->
             rows :=
               Obs.Json.Obj
                 [
                   ("v", Obs.Json.Num (float_of_string v));
                   ("m", Obs.Json.Num (float_of_string m));
                   ("eps", Obs.Json.Num (float_of_string eps));
                   ("algo", Obs.Json.Str algo);
                   ("sched_ns", Obs.Json.Num (1e9 *. float_of_string sched_s));
                   ("sim_ns", Obs.Json.Num (1e9 *. float_of_string sim_s));
                 ]
               :: !rows
         | _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !rows
  end

let scale_section csv =
  match scale_rows csv with
  | [] ->
      Printf.printf "no scale points (%s not found); \"scale\" omitted\n%!" csv;
      []
  | rows ->
      Printf.printf "embedded %d scale point(s) from %s\n%!" (List.length rows)
        csv;
      [ ("scale", Obs.Json.Arr rows) ]

let num_member key json =
  match Obs.Json.member key json with
  | Some (Obs.Json.Num n) -> Some n
  | _ -> None

let str_member key json =
  match Obs.Json.member key json with
  | Some (Obs.Json.Str s) -> Some s
  | _ -> None

(* Sanity ceilings for the committed scale points, in ns per task: an
   order of magnitude above the recorded runs, so the gate catches a
   gross regression (or a garbage file) without tripping on hardware
   variance. *)
let scale_ceilings_ns_per_task =
  [ ("LTF", ("sched_ns", 3e7)); ("C-LTF", ("sched_ns", 3e6)) ]

let sim_ceiling_ns_per_task = 1e7

(* Validate a "scale" array: the acceptance point (v = 10⁶, m = 10³) must
   be present for both flat LTF and clustered C-LTF, with finite
   measurements under the ceilings.  [required] toggles between the sched
   gate (points mandatory) and the sim gate (validated when present). *)
let check_scale ~required ~path doc =
  let entries =
    match Obs.Json.member "scale" doc with
    | Some (Obs.Json.Arr entries) -> entries
    | _ -> []
  in
  let bad = ref 0 in
  if entries = [] then begin
    if required then begin
      Printf.printf "FAIL %s: no \"scale\" section (v=10^6 points required)\n"
        path;
      incr bad
    end
  end
  else begin
    List.iter
      (fun (algo, (key, ceiling)) ->
        let found =
          List.find_opt
            (fun e ->
              str_member "algo" e = Some algo
              && num_member "v" e = Some 1_000_000.0
              && num_member "m" e = Some 1_000.0)
            entries
        in
        match found with
        | None ->
            if required then begin
              Printf.printf "FAIL scale point %s v=10^6 m=10^3 missing\n" algo;
              incr bad
            end
        | Some e -> (
            match num_member key e with
            | Some ns
              when Float.is_finite ns && ns > 0.0
                   && ns /. 1e6 <= ceiling ->
                Printf.printf "ok   scale %-6s v=10^6 m=10^3 %s %.3g ns/task\n"
                  algo key (ns /. 1e6)
            | Some ns ->
                Printf.printf
                  "FAIL scale %-6s v=10^6 m=10^3 %s %.3g ns/task > %.3g\n" algo
                  key (ns /. 1e6) ceiling;
                incr bad
            | None ->
                Printf.printf "FAIL scale %-6s v=10^6 m=10^3: no %s\n" algo key;
                incr bad))
      scale_ceilings_ns_per_task;
    (* Every committed simulate measurement stays under the per-task
       ceiling, whichever algorithm produced the mapping. *)
    List.iter
      (fun e ->
        match (num_member "v" e, num_member "sim_ns" e) with
        | Some v, Some ns when Float.is_finite ns && ns /. v > sim_ceiling_ns_per_task ->
            Printf.printf "FAIL scale sim point %.3g ns/task > %.3g\n" (ns /. v)
              sim_ceiling_ns_per_task;
            incr bad
        | _ -> ())
      entries
  end;
  !bad

let write_json path doc =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* --sched-json PATH: measure the before/after pairs plus the real
   scheduler trajectory points and emit them as one JSON document — the
   perf-trajectory format committed as BENCH_sched.json and produced by
   the CI bench smoke step. *)
let sched_json path =
  let cfg = bench_cfg () in
  let measure = measure_median cfg in
  let pairs = measure_pairs cfg sched_pairs in
  let trajectory =
    List.map
      (fun (key, thunk) ->
        let ns = measure key thunk in
        Printf.printf "%-40s %12.0f ns/run\n%!" key ns;
        (key, Obs.Json.Num ns))
      [
        ( "ltf_schedule_ns",
          opaque (fun () ->
              Ltf.schedule
                ~opts:Scheduler.(default |> with_mode Best_effort)
                prob_e1) );
        ( "rltf_schedule_ns",
          opaque (fun () ->
              Rltf.schedule
                ~opts:Scheduler.(default |> with_mode Best_effort)
                prob_e1) );
      ]
  in
  let doc =
    Obs.Json.Obj
      ([
         ("schema", Obs.Json.Str "streamsched-bench-sched/1");
         ("pairs", Obs.Json.Arr pairs);
         ("trajectory", Obs.Json.Obj trajectory);
       ]
      @ scale_section default_scale_csv)
  in
  write_json path doc

(* ------------------------------------------------------------------ *)
(* Parallel estimate scaling and per-draw allocation                    *)
(* ------------------------------------------------------------------ *)

(* The -j scaling point: one 1000-draw Monte-Carlo estimate fanned over a
   domain pool.  The estimate is bit-identical at every worker count (the
   smoke below asserts it); only the wall-clock may move. *)
let parallel_draws = 1000

let estimate_at_jobs jobs =
  Crash.estimate ~jobs ~source:(Crash.Of_program sim_medium_prog)
    ~method_:
      (Crash.Sampled
         { crashes = 1; draws = parallel_draws; rng = Rng.create ~seed:71 })
    ()

let parallel_jobs = [ 1; 2; 4 ]
let parallel_speedup_gate = 2.0

(* Assert the worker-count identity before any timing: a scaling number
   for a parallel path that changed the answer is worthless. *)
let assert_parallel_identity () =
  let reference = estimate_at_jobs 1 in
  List.iter
    (fun jobs ->
      if estimate_at_jobs jobs <> reference then begin
        Printf.eprintf
          "FAIL parallel estimate at -j %d differs from -j 1\n" jobs;
        exit 1
      end)
    (List.filter (fun j -> j > 1) parallel_jobs)

let parallel_section cfg =
  assert_parallel_identity ();
  let entries =
    List.map
      (fun jobs ->
        let ns =
          measure_median cfg
            (Printf.sprintf "estimate %d draws, -j %d" parallel_draws jobs)
            (opaque (fun () -> estimate_at_jobs jobs))
        in
        Printf.printf "estimate %4d draws, -j %d %24.0f ns/run\n%!"
          parallel_draws jobs ns;
        Obs.Json.Obj
          [ ("jobs", Obs.Json.Num (float_of_int jobs)); ("ns", Obs.Json.Num ns) ])
      parallel_jobs
  in
  Obs.Json.Obj
    [
      ("draws", Obs.Json.Num (float_of_int parallel_draws));
      (* The recording machine's core count decides which gate applies
         when the file is checked: full scaling can only be demanded of
         measurements taken on hardware that could exhibit it. *)
      ("cores", Obs.Json.Num (float_of_int (Domain.recommended_domain_count ())));
      ("gate", Obs.Json.Num parallel_speedup_gate);
      ("entries", Obs.Json.Arr entries);
    ]

(* Per-draw allocation, before (fresh slabs and message log every draw)
   and after (one arena, log off) — the GC-pressure half of the arena
   story, measured with [Gc.allocated_bytes] rather than the clock. *)
let alloc_iters = 100
let alloc_reps = 5
let alloc_ratio_gate = 5.0

(* Minimum over repetitions, not a single pass: [Gc.allocated_bytes]
   on OCaml 5.1 sporadically over-reports around minor collections
   (promotion accounting), so identical code can measure tens of
   percent high on any one pass.  The jumps are strictly upward, which
   makes the min across passes the stable estimate of what a draw
   actually allocates. *)
let bytes_per_call thunk =
  thunk ();
  (* warm: grow the arena, fault in the code path *)
  let best = ref infinity in
  for _ = 1 to alloc_reps do
    let before = Gc.allocated_bytes () in
    for _ = 1 to alloc_iters do
      thunk ()
    done;
    let b = (Gc.allocated_bytes () -. before) /. float_of_int alloc_iters in
    if b < !best then best := b
  done;
  !best

let alloc_entries () =
  let state = Engine.Run_state.create sim_medium_prog in
  let slab_draw () =
    ignore (Sys.opaque_identity (Engine.run_compiled ~failed:[ 0 ] sim_medium_prog))
  in
  let arena_draw () =
    ignore
      (Sys.opaque_identity
         (Engine.latency_compiled ~state ~failed:[ 0 ] sim_medium_prog))
  in
  let before_b = bytes_per_call slab_draw in
  let after_b = bytes_per_call arena_draw in
  Printf.printf
    "per-draw allocation %32.0f -> %10.0f bytes (%5.1fx, gate %.1fx)\n%!"
    before_b after_b (before_b /. after_b) alloc_ratio_gate;
  [
    Obs.Json.Obj
      [
        ("name", Obs.Json.Str "per-draw allocation (slabs vs arena)");
        ("before_bytes", Obs.Json.Num before_b);
        ("after_bytes", Obs.Json.Num after_b);
        ("ratio", Obs.Json.Num (before_b /. after_b));
        ("gate", Obs.Json.Num alloc_ratio_gate);
      ];
  ]

(* --sim-json PATH: the compiled-simulator before/after pairs plus the
   single-run trajectory points, committed as BENCH_sim.json — the second
   point of the perf trajectory. *)
let sim_json path =
  let cfg = bench_cfg () in
  let measure = measure_median cfg in
  let pairs = measure_pairs cfg sim_pairs in
  let overheads =
    List.map
      (fun (name, gate, closed, opened) ->
        let closed_ns = measure (name ^ " [closed]") closed in
        let open_ns = measure (name ^ " [open]") opened in
        Printf.printf
          "%-48s %12.0f -> %10.0f ns/run (%5.2fx overhead, gate %.2fx)\n%!"
          name closed_ns open_ns (open_ns /. closed_ns) gate;
        Obs.Json.Obj
          [
            ("name", Obs.Json.Str name);
            ("closed_ns", Obs.Json.Num closed_ns);
            ("open_ns", Obs.Json.Num open_ns);
            ("ratio", Obs.Json.Num (open_ns /. closed_ns));
            ("gate", Obs.Json.Num gate);
          ])
      overhead_pairs
  in
  let trajectory =
    List.map
      (fun (key, thunk) ->
        let ns = measure key thunk in
        Printf.printf "%-48s %12.0f ns/run\n%!" key ns;
        (key, Obs.Json.Num ns))
      [
        ( "engine_compile_medium_ns",
          opaque (fun () -> Engine.compile sim_medium) );
        ( "engine_run_compiled_medium_ns",
          opaque (fun () -> Engine.run_compiled sim_medium_prog) );
        ( "engine_run_compiled_20_items_ns",
          opaque (fun () -> Engine.run_compiled ~n_items:20 sim_medium_prog) );
      ]
  in
  let doc =
    Obs.Json.Obj
      ([
         ("schema", Obs.Json.Str "streamsched-bench-sim/1");
         ("pairs", Obs.Json.Arr pairs);
         ("overheads", Obs.Json.Arr overheads);
         ("parallel", parallel_section cfg);
         ("alloc", Obs.Json.Arr (alloc_entries ()));
         ("trajectory", Obs.Json.Obj trajectory);
       ]
      @ scale_section default_scale_csv)
  in
  write_json path doc

(* The open-system machinery may cost something, but not much: fail when
   a recorded closed-vs-open ratio exceeds this.  An entry can carry its
   own tighter ceiling in a "gate" member (the fault-machinery pair is
   recorded at 1.05x); this global is the default for entries without
   one, including files recorded before gates existed. *)
let max_open_overhead = 1.3

let load_json path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  match Obs.Json.parse body with
  | Error msg ->
      Printf.eprintf "%s: unparseable: %s\n" path msg;
      exit 1
  | Ok doc -> doc

(* Returns the number of out-of-bounds pairs; shared by both check
   gates. *)
let check_pairs ~path doc =
  let pairs =
    match Obs.Json.member "pairs" doc with
    | Some (Obs.Json.Arr pairs) -> pairs
    | _ ->
        Printf.eprintf "%s: no \"pairs\" array\n" path;
        exit 1
  in
  let bad = ref 0 in
  List.iter
    (fun pair ->
      let name =
        match str_member "name" pair with Some s -> s | None -> "<unnamed>"
      in
      match num_member "speedup" pair with
      | Some s when s >= 1.0 -> Printf.printf "ok   %-48s %5.1fx\n" name s
      | Some s ->
          Printf.printf "FAIL %-48s %5.2fx < 1.0\n" name s;
          incr bad
      | None ->
          Printf.printf "FAIL %-48s missing speedup\n" name;
          incr bad)
    pairs;
  (List.length pairs, !bad)

(* Validate a "parallel" section when present: entries are (jobs, ns)
   with a -j 1 reference.  Full scaling (the recorded gate, 2x by
   default) is demanded only when the recording machine had at least as
   many cores as workers; on smaller machines parallelism cannot pay,
   so the gate degrades to bounded overhead (no worse than 2x slower
   than -j 1). *)
let check_parallel ~path doc =
  match Obs.Json.member "parallel" doc with
  | None -> 0
  | Some section ->
      let bad = ref 0 in
      let entries =
        match Obs.Json.member "entries" section with
        | Some (Obs.Json.Arr entries) -> entries
        | _ -> []
      in
      let ns_at jobs =
        List.find_map
          (fun e ->
            if num_member "jobs" e = Some (float_of_int jobs) then
              num_member "ns" e
            else None)
          entries
      in
      let cores =
        match num_member "cores" section with Some c -> c | None -> 1.0
      in
      let gate =
        match num_member "gate" section with Some g -> g | None -> 2.0
      in
      (match ns_at 1 with
      | None ->
          Printf.printf "FAIL %s: \"parallel\" section has no -j 1 entry\n"
            path;
          incr bad
      | Some ns1 ->
          List.iter
            (fun e ->
              match (num_member "jobs" e, num_member "ns" e) with
              | Some jobs, Some ns when jobs > 1.0 ->
                  let speedup = ns1 /. ns in
                  let required = if cores >= jobs then gate else 0.5 in
                  if Float.is_finite speedup && speedup >= required then
                    Printf.printf
                      "ok   parallel -j %.0f %32.2fx vs -j 1 (>= %.2fx, %.0f \
                       cores)\n"
                      jobs speedup required cores
                  else begin
                    Printf.printf
                      "FAIL parallel -j %.0f %30.2fx vs -j 1 < %.2fx\n" jobs
                      speedup required;
                    incr bad
                  end
              | _ -> ())
            entries);
      !bad

(* Validate an "alloc" section when present: each entry's before/after
   allocation ratio must clear its recorded gate — the arena has to keep
   buying its order-of-magnitude allocation saving, not just break
   even. *)
let check_alloc ~path:_ doc =
  match Obs.Json.member "alloc" doc with
  | Some (Obs.Json.Arr entries) ->
      let bad = ref 0 in
      List.iter
        (fun e ->
          let name =
            match str_member "name" e with Some s -> s | None -> "<unnamed>"
          in
          let gate =
            match num_member "gate" e with Some g -> g | None -> alloc_ratio_gate
          in
          match num_member "ratio" e with
          | Some r when Float.is_finite r && r >= gate ->
              Printf.printf "ok   %-48s %5.1fx less allocation (gate %.1fx)\n"
                name r gate
          | Some r ->
              Printf.printf "FAIL %-48s %5.1fx allocation ratio < %.1fx\n" name
                r gate;
              incr bad
          | None ->
              Printf.printf "FAIL %-48s missing allocation ratio\n" name;
              incr bad)
        entries;
      !bad
  | _ -> 0

(* --check-sim-json PATH: regression guard over a committed trajectory
   file — fail the build when any recorded before/after pair has
   regressed below break-even, any open-system overhead ratio exceeds
   {!max_open_overhead}, the parallel estimate stopped scaling (or
   started costing), or the arena's allocation saving eroded.  When the
   file carries large-instance scale points, their simulate cost must
   stay under the per-task ceiling. *)
let check_sim_json path =
  let doc = load_json path in
  let n_pairs, pair_bad = check_pairs ~path doc in
  let bad = ref pair_bad in
  (* Tolerate files recorded before the overheads section existed. *)
  let overheads =
    match Obs.Json.member "overheads" doc with
    | Some (Obs.Json.Arr entries) -> entries
    | _ -> []
  in
  List.iter
    (fun entry ->
      let name =
        match str_member "name" entry with Some s -> s | None -> "<unnamed>"
      in
      let gate =
        match num_member "gate" entry with
        | Some g -> g
        | None -> max_open_overhead
      in
      match num_member "ratio" entry with
      | Some r when r <= gate ->
          Printf.printf "ok   %-48s %5.2fx overhead (gate %.2fx)\n" name r gate
      | Some r ->
          Printf.printf "FAIL %-48s %5.2fx overhead > %.2fx\n" name r gate;
          incr bad
      | None ->
          Printf.printf "FAIL %-48s missing overhead ratio\n" name;
          incr bad)
    overheads;
  bad := !bad + check_parallel ~path doc;
  bad := !bad + check_alloc ~path doc;
  bad := !bad + check_scale ~required:false ~path doc;
  if !bad > 0 then begin
    Printf.eprintf "%s: %d entry(ies) out of bounds\n" path !bad;
    exit 1
  end;
  Printf.printf
    "%s: %d pair(s) at or above break-even, %d overhead(s) within their \
     gates\n"
    path n_pairs (List.length overheads)

(* --check-sched-json PATH: regression guard over the committed scheduler
   trajectory — break-even pairs as above, plus the million-task
   acceptance points: the file must carry v=10⁶, m=10³ scale entries for
   both LTF and C-LTF with per-task costs under the ceilings. *)
let check_sched_json path =
  let doc = load_json path in
  let n_pairs, pair_bad = check_pairs ~path doc in
  let bad = ref pair_bad in
  bad := !bad + check_scale ~required:true ~path doc;
  if !bad > 0 then begin
    Printf.eprintf "%s: %d entry(ies) out of bounds\n" path !bad;
    exit 1
  end;
  Printf.printf "%s: %d pair(s) at or above break-even, scale points ok\n" path
    n_pairs

(* --parallel-smoke: the CI determinism step — one 1000-draw estimate at
   -j 1/2/4, asserting bit-identity (exit 1 on any divergence) and
   printing raw wall-clocks for the log.  No OLS, no JSON: this is a
   correctness gate, not a measurement. *)
let parallel_smoke () =
  let reference = estimate_at_jobs 1 in
  List.iter
    (fun jobs ->
      let t0 = Unix.gettimeofday () in
      let e = estimate_at_jobs jobs in
      let dt = Unix.gettimeofday () -. t0 in
      if e <> reference then begin
        Printf.eprintf "FAIL estimate at -j %d differs from -j 1\n" jobs;
        exit 1
      end;
      Printf.printf "ok   -j %d bit-identical (%d draws, %.3f s)\n%!" jobs
        parallel_draws dt)
    parallel_jobs;
  Printf.printf "parallel estimate smoke: all worker counts identical\n%!"

(* --gc-stats: allocation and collection counts per draw for the slab
   and arena paths — the numbers behind the "alloc" section, in a
   human-readable dump CI uploads as an artifact. *)
let gc_stats () =
  Printf.printf "## GC per draw (medium workload, %d draws per shape)\n"
    alloc_iters;
  let state = Engine.Run_state.create sim_medium_prog in
  let shapes =
    [
      ( "fresh slabs + message log (legacy draw)",
        fun () ->
          ignore
            (Sys.opaque_identity
               (Engine.run_compiled ~failed:[ 0 ] sim_medium_prog)) );
      ( "arena reuse, log off (estimate draw)",
        fun () ->
          ignore
            (Sys.opaque_identity
               (Engine.latency_compiled ~state ~failed:[ 0 ] sim_medium_prog))
      );
    ]
  in
  List.iter
    (fun (name, thunk) ->
      thunk ();
      let s0 = Gc.quick_stat () in
      let b0 = Gc.allocated_bytes () in
      for _ = 1 to alloc_iters do
        thunk ()
      done;
      let b1 = Gc.allocated_bytes () in
      let s1 = Gc.quick_stat () in
      let per x0 x1 = (x1 -. x0) /. float_of_int alloc_iters in
      Printf.printf
        "%-42s %12.0f bytes (min %.0f)  %8.1f minor words  %8.1f major \
         words  %6.2f minor collections\n%!"
        name
        (per b0 b1) (bytes_per_call thunk)
        (per s0.Gc.minor_words s1.Gc.minor_words)
        (per s0.Gc.major_words s1.Gc.major_words)
        (per
           (float_of_int s0.Gc.minor_collections)
           (float_of_int s1.Gc.minor_collections)))
    shapes

let () =
  match Array.to_list Sys.argv with
  | _ :: "--sched-json" :: path :: _ -> sched_json path
  | _ :: "--sim-json" :: path :: _ -> sim_json path
  | _ :: "--check-sim-json" :: path :: _ -> check_sim_json path
  | _ :: "--check-sched-json" :: path :: _ -> check_sched_json path
  | _ :: "--parallel-smoke" :: _ -> parallel_smoke ()
  | _ :: "--gc-stats" :: _ -> gc_stats ()
  | _ ->
      print_endline "Benchmarks (Bechamel, monotonic clock, OLS ns/run)";
      print_endline "===================================================";
      run_group "Figure regeneration (one sweep point each)" figure_tests;
      run_group "Parallel sweep engine (domain pool)" parallel_tests;
      run_group "Scheduling algorithms" algorithm_tests;
      run_group "Incremental scheduling state (before/after)" sched_tests;
      run_group "Compiled simulator (before/after)" sim_tests;
      run_group "Substrates" substrate_tests;
      counter_deltas ()
