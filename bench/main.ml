(* Bechamel benchmarks: one Test.make per evaluation figure of the paper
   (timing the regeneration of one representative sweep point of it) plus
   micro-benchmarks for every subsystem the figures are built from.

     dune exec bench/main.exe
*)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Fixtures shared across iterations                                    *)
(* ------------------------------------------------------------------ *)

let instance ~seed ~granularity =
  let rng = Rng.create ~seed in
  Paper_workload.instance ~rng ~granularity ()

let inst_g1 = instance ~seed:1 ~granularity:1.0

let problem ~eps inst =
  Types.problem ~dag:inst.Paper_workload.dag ~platform:inst.Paper_workload.plat
    ~eps
    ~throughput:(Paper_workload.throughput ~eps)

let prob_e1 = problem ~eps:1 inst_g1
let prob_e3 = problem ~eps:3 inst_g1

let mapping_e1 =
  match Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e1 with
  | Ok m -> m
  | Error _ -> failwith "bench fixture: R-LTF failed"

let mapping_e3 =
  match Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e3 with
  | Ok m -> m
  | Error _ -> failwith "bench fixture: R-LTF failed"

(* A figure "point": schedule + measure both algorithms on one fresh graph
   at one granularity, exactly what the sweep repeats 60 times per point. *)
let figure_point ~eps ~crashes ~granularity seed =
  let config =
    {
      (Fig_common.quick ~eps ~crashes) with
      Fig_common.graphs_per_point = 1;
      granularities = [ granularity ];
      seed;
    }
  in
  Fig_common.collect config

(* ------------------------------------------------------------------ *)
(* The benchmarks                                                       *)
(* ------------------------------------------------------------------ *)

let figure_tests =
  [
    Test.make ~name:"fig3a-point (eps=1 bounds)"
      (Staged.stage (fun () -> figure_point ~eps:1 ~crashes:0 ~granularity:1.0 11));
    Test.make ~name:"fig3b-point (eps=1, 1 crash)"
      (Staged.stage (fun () -> figure_point ~eps:1 ~crashes:1 ~granularity:1.0 12));
    Test.make ~name:"fig3c-point (eps=1 overhead)"
      (Staged.stage (fun () -> figure_point ~eps:1 ~crashes:1 ~granularity:0.6 13));
    Test.make ~name:"fig4a-point (eps=3 bounds)"
      (Staged.stage (fun () -> figure_point ~eps:3 ~crashes:0 ~granularity:1.0 14));
    Test.make ~name:"fig4b-point (eps=3, 2 crashes)"
      (Staged.stage (fun () -> figure_point ~eps:3 ~crashes:2 ~granularity:1.0 15));
    Test.make ~name:"fig4c-point (eps=3 overhead)"
      (Staged.stage (fun () -> figure_point ~eps:3 ~crashes:2 ~granularity:0.6 16));
    Test.make ~name:"fig1+fig2 worked examples"
      (Staged.stage (fun () ->
           ignore (Paper_examples.fig1 ());
           ignore (Paper_examples.fig2 ())));
    Test.make ~name:"baselines-row (8 heuristics, 1 graph)"
      (Staged.stage (fun () ->
           let inst = instance ~seed:17 ~granularity:1.0 in
           let dag = inst.Paper_workload.dag and plat = inst.Paper_workload.plat in
           let throughput = Paper_workload.throughput ~eps:0 in
           ignore (Heft.mapping ~throughput dag plat);
           ignore (Etf.mapping ~throughput dag plat);
           ignore (Hary.mapping dag plat ~throughput);
           ignore (Expert.mapping dag plat ~throughput);
           ignore (Tda.mapping dag plat ~throughput);
           ignore (Stdp.mapping dag plat ~throughput);
           ignore (Wmsh.mapping dag plat ~throughput);
           ignore (Hoang.mapping ~iterations:10 dag plat)));
    Test.make ~name:"symmetric-point (Section 6 searches)"
      (Staged.stage (fun () ->
           let inst = instance ~seed:18 ~granularity:1.0 in
           let dag = inst.Paper_workload.dag and plat = inst.Paper_workload.plat in
           ignore
             (Symmetric.max_throughput ~iterations:6 ~dag ~platform:plat ~eps:1
                ~latency_bound:500.0 ())));
  ]

(* A 12-trial sweep (3 granularities x 4 graphs) timed at -j 1/2/4:
   the collect results are bit-identical across the three, only the
   wall-clock may differ.  Pool setup/teardown is included, as in the
   CLI's `-j N` path. *)
let parallel_collect_config =
  {
    (Fig_common.quick ~eps:1 ~crashes:1) with
    Fig_common.graphs_per_point = 4;
    granularities = [ 0.6; 1.0; 1.4 ];
  }

let parallel_tests =
  List.map
    (fun jobs ->
      Test.make
        ~name:(Printf.sprintf "collect 12 trials, -j %d" jobs)
        (Staged.stage (fun () ->
             Fig_common.collect ~jobs parallel_collect_config)))
    [ 1; 2; 4 ]

let algorithm_tests =
  [
    Test.make ~name:"LTF schedule (v=100, m=20, eps=1)"
      (Staged.stage (fun () -> Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e1));
    Test.make ~name:"R-LTF schedule (v=100, m=20, eps=1)"
      (Staged.stage (fun () -> Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e1));
    Test.make ~name:"LTF schedule (eps=3)"
      (Staged.stage (fun () -> Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e3));
    Test.make ~name:"R-LTF schedule (eps=3)"
      (Staged.stage (fun () -> Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e3));
  ]

let substrate_tests =
  [
    Test.make ~name:"workload instance generation"
      (Staged.stage (fun () -> instance ~seed:19 ~granularity:1.0));
    Test.make ~name:"one-port event simulation (1 item)"
      (Staged.stage (fun () -> Engine.run mapping_e1));
    Test.make ~name:"one-port event simulation (20 items)"
      (Staged.stage (fun () -> Engine.run ~n_items:20 mapping_e1));
    Test.make ~name:"stage-synchronous latency"
      (Staged.stage (fun () ->
           Stage_latency.latency mapping_e1 ~throughput:0.05));
    Test.make ~name:"crash replay (1 failure)"
      (Staged.stage (fun () -> Engine.latency ~failed:[ 0 ] mapping_e1));
    Test.make ~name:"exhaustive tolerance validation (eps=3)"
      (Staged.stage (fun () -> Validate.fault_tolerance mapping_e3));
    Test.make ~name:"exact width (Dilworth, v=100)"
      (Staged.stage (fun () -> Width.exact inst_g1.Paper_workload.dag));
    Test.make ~name:"post-failure recovery (1 crash)"
      (Staged.stage (fun () -> Recovery.restore mapping_e1 ~failed:[ 0 ]));
    Test.make ~name:"platform cost minimization"
      (Staged.stage (fun () ->
           Platform_cost.minimize ~dag:inst_g1.Paper_workload.dag
             ~platform:inst_g1.Paper_workload.plat ~eps:1
             ~throughput:(Paper_workload.throughput ~eps:1)
             ()));
    Test.make ~name:"exact optimum (9 tasks, m=4)"
      (Staged.stage
         (let plat =
            Platform.homogeneous ~name:"bench" ~m:4 ~speed:1.0 ~bandwidth:1.0 ()
          in
          let rng = Rng.create ~seed:23 in
          let dag =
            Calibrate.calibrated (Random_dag.layered ~rng ~tasks:9 ()) plat
              ~granularity:1.0
          in
          fun () ->
            Optimal.minimum_stages ~dag ~platform:plat ~throughput:0.25 ()));
    Test.make ~name:"mapping round trip (print + parse)"
      (Staged.stage (fun () ->
           Mapping_io.parse ~dag:inst_g1.Paper_workload.dag
             ~platform:inst_g1.Paper_workload.plat
             (Mapping_io.print mapping_e1)));
  ]

(* ------------------------------------------------------------------ *)
(* Counter deltas                                                       *)
(* ------------------------------------------------------------------ *)

(* Work-per-run to go with the time-per-run above: run each
   representative operation once under the observability layer and print
   what a single invocation costs in placement probes, heap events, etc.
   Recording stays off for the timed groups so they measure the same
   code path as production runs. *)
let counter_deltas () =
  Printf.printf "## Counter deltas (Stream_obs, one invocation each)\n%!";
  Obs.set_enabled true;
  let delta name f =
    Obs.reset ();
    ignore (f ());
    let counters =
      List.sort compare (Obs.Registry.counters (Obs.snapshot ()))
    in
    Printf.printf "%s\n" name;
    List.iter
      (fun (k, v) -> if v > 0 then Printf.printf "    %-32s %d\n" k v)
      counters
  in
  delta "LTF schedule (v=100, m=20, eps=1)" (fun () ->
      Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e1);
  delta "R-LTF schedule (eps=3)" (fun () ->
      Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob_e3);
  delta "one-port event simulation (20 items)" (fun () ->
      Engine.run ~n_items:20 mapping_e1);
  delta "fig3a sweep point (1 graph)" (fun () ->
      figure_point ~eps:1 ~crashes:0 ~granularity:1.0 11);
  Obs.set_enabled false;
  Obs.reset ();
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let run_group name tests =
  Printf.printf "## %s\n%!" name;
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let measures = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg measures test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun label result ->
          match Analyze.OLS.estimates result with
          | Some [ ns_per_run ] ->
              Printf.printf "%-44s %14.0f ns/run (%10.3f ms)\n%!" label
                ns_per_run (ns_per_run /. 1e6)
          | _ -> Printf.printf "%-44s (no estimate)\n%!" label)
        analyzed)
    tests;
  print_newline ()

let () =
  print_endline "Benchmarks (Bechamel, monotonic clock, OLS ns/run)";
  print_endline "===================================================";
  run_group "Figure regeneration (one sweep point each)" figure_tests;
  run_group "Parallel sweep engine (domain pool)" parallel_tests;
  run_group "Scheduling algorithms" algorithm_tests;
  run_group "Substrates" substrate_tests;
  counter_deltas ()
