(* Schedule visualizer: build a graph (classic family or random), schedule
   it with LTF or R-LTF, and print the mapping, the ASCII Gantt chart of a
   simulated execution, and the metrics. *)

open Cmdliner

let build_graph name tasks seed =
  match name with
  | "fig1" -> Classic.fig1_graph
  | "fig2" -> Classic.fig2_graph
  | "chain" -> Classic.chain ~n:tasks ~exec:1.0 ~volume:0.5
  | "fork-join" -> Classic.fork_join ~width:(max 1 (tasks - 2)) ~exec:1.0 ~volume:0.5
  | "diamond" -> Classic.diamond ~levels:(max 1 (int_of_float (sqrt (float_of_int tasks)))) ~exec:1.0 ~volume:0.5
  | "fft" ->
      let p = max 1 (int_of_float (Float.log2 (float_of_int (max 2 tasks)) /. 2.0)) in
      Classic.fft ~p ~exec:1.0 ~volume:0.5
  | "gauss" -> Classic.gaussian_elimination ~n:(max 2 (int_of_float (sqrt (2.0 *. float_of_int tasks)))) ~exec:1.0 ~volume:0.5
  | "stencil" ->
      let side = max 1 (int_of_float (sqrt (float_of_int tasks))) in
      Classic.stencil ~rows:side ~cols:side ~exec:1.0 ~volume:0.5
  | "random" ->
      let rng = Rng.create ~seed in
      Random_dag.layered ~rng ~tasks ()
  | other -> failwith (Printf.sprintf "unknown graph family %S" other)

let main graph_name algo tasks m eps period seed crash spec_string
    workflow_file platform_file svg_out trace_out save_mapping load_mapping =
  try
    let spec_instance =
      match spec_string with
      | None -> None
      | Some str -> (
          match Workflow_io.instance_of_spec ~seed str with
          | Ok inst -> Some inst
          | Error e -> failwith (str ^ ": " ^ Workflow_io.error_to_string e))
    in
    let dag =
      match (spec_instance, workflow_file) with
      | Some inst, _ -> inst.Paper_workload.dag
      | None, Some path -> (
          match Workflow_io.load_workflow path with
          | Ok dag -> dag
          | Error e -> failwith (path ^ ": " ^ Workflow_io.error_to_string e))
      | None, None -> build_graph graph_name tasks seed
    in
    let plat =
      match (spec_instance, platform_file) with
      | Some inst, _ -> inst.Paper_workload.plat
      | None, Some path -> (
          match Workflow_io.load_platform path with
          | Ok p -> p
          | Error e -> failwith (path ^ ": " ^ Workflow_io.error_to_string e))
      | None, None ->
          if graph_name = "fig1" && workflow_file = None then
            Classic.fig1_platform
          else Classic.fig2_platform ~m
    in
    let dag =
      if
        spec_instance <> None
        || ((graph_name = "fig1" || graph_name = "fig2") && workflow_file = None)
      then dag
      else Calibrate.normalize_time dag plat
    in
    let throughput = 1.0 /. period in
    let prob = Types.problem ~dag ~platform:plat ~eps ~throughput in
    let outcome =
      match load_mapping with
      | Some path -> (
          match Mapping_io.load ~dag ~platform:plat path with
          | Ok mapping -> Ok mapping
          | Error e -> failwith (path ^ ": " ^ Mapping_io.error_to_string e))
      | None -> (
          match algo with
          | "ltf" -> Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob
          | "rltf" -> Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob
          | other -> failwith (Printf.sprintf "unknown algorithm %S" other))
    in
    match outcome with
    | Error f ->
        Printf.eprintf "scheduling failed: %s\n" (Types.failure_to_string f);
        1
    | Ok mapping ->
        Format.printf "%a@." Mapping.pp mapping;
        print_string (Gantt.summary mapping);
        let failed = List.init (min crash m) Fun.id in
        let result = Engine.run ~failed mapping in
        let times item id =
          match (result.Engine.start_time item id, result.Engine.finish_time item id) with
          | Some s, Some f -> Some (s, f)
          | _ -> None
        in
        print_string (Gantt.render mapping ~times:(times 0));
        Printf.printf "stages S = %d\n" (Metrics.stage_depth mapping);
        Printf.printf "latency bound (2S-1)/T = %.2f\n"
          (Metrics.latency_bound mapping ~throughput);
        (match result.Engine.item_latency.(0) with
        | Some l ->
            Printf.printf "simulated latency%s = %.2f\n"
              (if crash > 0 then Printf.sprintf " (with %d crash)" crash else "")
              l
        | None -> print_endline "simulated latency: an exit task was lost");
        Printf.printf "achieved period = %.2f (desired %.2f)\n"
          (Metrics.period mapping) period;
        Printf.printf "replica messages = %d\n" (Mapping.n_messages mapping);
        Option.iter
          (fun path ->
            Mapping_io.save path mapping;
            Printf.printf "mapping written to %s\n" path)
          save_mapping;
        Option.iter
          (fun path ->
            Svg_gantt.save path mapping result;
            Printf.printf "SVG Gantt written to %s\n" path)
          svg_out;
        Option.iter
          (fun path ->
            Trace.save_chrome_json path mapping result;
            Printf.printf "Chrome trace written to %s\n" path)
          trace_out;
        0
  with Failure msg ->
    prerr_endline msg;
    1

let graph_arg =
  let doc =
    "Graph family: fig1, fig2, chain, fork-join, diamond, fft, gauss, \
     stencil, random."
  in
  Arg.(value & pos 0 string "fig2" & info [] ~docv:"GRAPH" ~doc)

let algo_arg =
  let doc = "Scheduling algorithm: ltf or rltf." in
  Arg.(value & opt string "rltf" & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)

let tasks_arg =
  Arg.(value & opt int 24 & info [ "tasks"; "n" ] ~docv:"N" ~doc:"Task count for generated graphs.")

let m_arg =
  Arg.(value & opt int 8 & info [ "procs"; "m" ] ~docv:"M" ~doc:"Processor count.")

let eps_arg =
  Arg.(value & opt int 1 & info [ "eps"; "e" ] ~docv:"EPS" ~doc:"Tolerated failures.")

let period_arg =
  Arg.(value & opt float 20.0 & info [ "period" ] ~docv:"DELTA" ~doc:"Desired period 1/T.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for random graphs.")

let crash_arg =
  Arg.(value & opt int 0 & info [ "crash" ] ~docv:"C" ~doc:"Fail the first C processors in the replay.")

let spec_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spec" ] ~docv:"SPEC"
        ~doc:
          "Generate the workflow and platform from a workload spec string \
           (e.g. paper-layered, huge-small:v=500:m=10); overrides GRAPH, \
           --file and --platform-file.")

let workflow_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "file"; "f" ] ~docv:"FILE"
        ~doc:"Load the workflow from a Workflow_io text file instead of GRAPH.")

let platform_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "platform-file" ] ~docv:"FILE"
        ~doc:"Load the platform from a Workflow_io text file.")

let svg_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "svg" ] ~docv:"FILE" ~doc:"Write an SVG Gantt chart of the replay.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace-event JSON of the replay.")

let save_mapping_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-mapping" ] ~docv:"FILE"
        ~doc:"Write the computed mapping to a Mapping_io text file.")

let load_mapping_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load-mapping" ] ~docv:"FILE"
        ~doc:
          "Replay a previously saved mapping instead of scheduling (must \
           match the workflow and platform).")

let cmd =
  let doc = "schedule a workflow and draw the resulting pipelined execution" in
  Cmd.v (Cmd.info "schedviz" ~doc)
    Term.(
      const main $ graph_arg $ algo_arg $ tasks_arg $ m_arg $ eps_arg
      $ period_arg $ seed_arg $ crash_arg $ spec_arg $ workflow_file_arg
      $ platform_file_arg $ svg_arg $ trace_arg $ save_mapping_arg
      $ load_mapping_arg)

let () = exit (Cmd.eval' cmd)
