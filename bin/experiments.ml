(* CLI driver regenerating every figure of the paper's evaluation (and the
   extensions).  `experiments.exe all` reproduces the full set. *)

open Cmdliner

let run_experiments names quick seed jobs out_dir =
  let targets =
    match names with
    | [] | [ "all" ] -> Ok Runner.all
    | names ->
        let missing = List.filter (fun n -> Runner.find n = None) names in
        if missing <> [] then
          Error
            (Printf.sprintf "unknown experiment(s): %s (available: %s)"
               (String.concat ", " missing)
               (String.concat ", " ("all" :: Runner.names)))
        else Ok (List.filter_map Runner.find names)
  in
  let jobs = if jobs <= 0 then Parallel.default_jobs () else jobs in
  match targets with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok targets ->
      List.iter
        (fun (e : Runner.experiment) ->
          Printf.printf "=== %s: %s ===\n%!" e.Runner.name e.Runner.description;
          e.Runner.run ~quick ~seed ~jobs ~out_dir;
          print_newline ())
        targets;
      0

let names_arg =
  let doc =
    "Experiments to run: $(b,all) or any of "
    ^ String.concat ", " Runner.names ^ "."
  in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)

let quick_arg =
  let doc =
    "Shrink the per-point replication (8 graphs/point instead of the \
     paper's 60) for a fast smoke run."
  in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let seed_arg =
  let doc = "Base random seed (runs are deterministic in the seed)." in
  Arg.(value & opt int 2009 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the sample sweeps.  $(b,-j 1) (the default) runs \
     sequentially without spawning any domain; $(b,-j 0) uses one worker \
     per recommended domain.  Results are byte-for-byte identical for \
     every value — parallelism only changes the wall-clock."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let out_arg =
  let doc = "Directory for the CSV outputs." in
  Arg.(value & opt string "results" & info [ "out" ] ~docv:"DIR" ~doc)

let cmd =
  let doc =
    "regenerate the evaluation of 'Optimizing the Latency of Streaming \
     Applications under Throughput and Reliability Constraints'"
  in
  let info = Cmd.info "experiments" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run_experiments $ names_arg $ quick_arg $ seed_arg $ jobs_arg
      $ out_arg)

let () = exit (Cmd.eval' cmd)
