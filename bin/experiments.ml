(* CLI driver regenerating every figure of the paper's evaluation (and the
   extensions).  `experiments.exe all` reproduces the full set. *)

open Cmdliner

let report_metrics ~metrics ~metrics_text ~check_metrics =
  let reg = Obs.snapshot () in
  (match metrics with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Registry.to_json reg);
      output_char oc '\n';
      close_out oc;
      Printf.printf "metrics written to %s\n%!" path);
  if metrics_text then Format.printf "%a@?" Obs.Registry.pp_text reg;
  if not check_metrics then 0
  else
    (* Validate the rendered JSON, not the in-memory registry: the
       round-trip through the parser is part of the contract. *)
    match Obs_report.validate_string (Obs.Registry.to_json reg) with
    | Ok () ->
        print_endline "metrics check: ok";
        0
    | Error problems ->
        List.iter
          (fun p -> Printf.eprintf "metrics check: missing %s\n" p)
          problems;
        1

let run_experiments names fig workload quick seed jobs out_dir exact metrics
    metrics_text check_metrics check_exact =
  let names = match fig with Some f -> [ f ] | None -> names in
  let targets =
    match names with
    | [] | [ "all" ] -> Ok Runner.all
    | names ->
        let missing = List.filter (fun n -> Runner.find n = None) names in
        if missing <> [] then
          Error
            (Printf.sprintf "unknown experiment(s): %s (available: %s)"
               (String.concat ", " missing)
               (String.concat ", " ("all" :: Runner.names)))
        else Ok (List.filter_map Runner.find names)
  in
  let jobs = if jobs <= 0 then Parallel.default_jobs () else jobs in
  let obs_on = metrics <> None || metrics_text || check_metrics in
  match targets with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok targets ->
      if obs_on then begin
        Obs.set_enabled true;
        Obs.reset ()
      end;
      List.iter
        (fun (e : Runner.experiment) ->
          Printf.printf "=== %s: %s ===\n%!" e.Runner.name e.Runner.description;
          e.Runner.run ~workload ~quick ~seed ~jobs ~exact ~out_dir;
          print_newline ())
        targets;
      let metrics_status =
        if obs_on then report_metrics ~metrics ~metrics_text ~check_metrics
        else 0
      in
      let exact_status =
        if not check_exact then 0
        else
          (* The gate re-derives everything from the seed, so it checks
             the calculus/sampler pair itself, not a particular run. *)
          let config =
            { (if quick then Fig_convergence.quick else Fig_convergence.default)
              with Fig_convergence.seed }
          in
          match Fig_convergence.check ~jobs config with
          | Ok () ->
              print_endline "exact cross-check: ok";
              0
          | Error msg ->
              prerr_endline msg;
              1
      in
      if metrics_status <> 0 then metrics_status else exact_status

let names_arg =
  let doc =
    "Experiments to run: $(b,all) or any of "
    ^ String.concat ", " Runner.names ^ "."
  in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)

let quick_arg =
  let doc =
    "Shrink the per-point replication (8 graphs/point instead of the \
     paper's 60) for a fast smoke run."
  in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let seed_arg =
  let doc = "Base random seed (runs are deterministic in the seed)." in
  Arg.(value & opt int 2009 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the sample sweeps.  $(b,-j 1) (the default) runs \
     sequentially without spawning any domain; $(b,-j 0) uses one worker \
     per recommended domain.  Results are byte-for-byte identical for \
     every value — parallelism only changes the wall-clock."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let out_arg =
  let doc = "Directory for the CSV outputs." in
  Arg.(value & opt string "results" & info [ "out" ] ~docv:"DIR" ~doc)

let fig_arg =
  let doc =
    "Run a single experiment by name (same names as the positional \
     arguments; overrides them).  $(b,--fig latency) is the profiling \
     run that exercises every instrumented layer."
  in
  Arg.(
    value & opt (some string) None & info [ "fig" ] ~docv:"EXPERIMENT" ~doc)

let workload_arg =
  let doc =
    "Run the sweep experiments on a named workload spec instead of their \
     default, e.g. $(b,paper-fan-in-out) or $(b,huge:v=5000:m=50) \
     (':'-separated overrides; $(b,v) pins the task count, $(b,m) the \
     processor count).  Experiments with a fixed workload ignore it."
  in
  Arg.(
    value & opt (some string) None & info [ "workload" ] ~docv:"SPEC" ~doc)

let exact_arg =
  let doc =
    "Compute crash columns with the exact availability calculus instead \
     of Monte-Carlo draws where an experiment supports it (fig3c, fig4c, \
     recovery).  Exact outputs go to $(b,-exact)-suffixed CSV files; the \
     sampled artifacts are never touched."
  in
  Arg.(value & flag & info [ "exact" ] ~doc)

let check_exact_arg =
  let doc =
    "After the run, cross-validate the Monte-Carlo crash sampler against \
     the exact availability calculus on pinned seeds (the convergence \
     gate) and exit non-zero when the gap exceeds the tolerance.  \
     Deterministic in $(b,--seed)."
  in
  Arg.(value & flag & info [ "check-exact" ] ~doc)

let metrics_arg =
  let doc =
    "Enable the observability layer and write the collected counters, \
     histograms and spans as JSON to $(docv) after the run.  Recording \
     is purely observational: results and figure outputs are \
     byte-for-byte identical with or without it."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics" ] ~docv:"PATH" ~doc)

let metrics_text_arg =
  let doc =
    "Enable the observability layer and print a human-readable metrics \
     dump after the run."
  in
  Arg.(value & flag & info [ "metrics-text" ] ~doc)

let check_metrics_arg =
  let doc =
    "Enable the observability layer and validate the collected metrics \
     against the documented key set (see Obs_report); exits non-zero \
     when a documented key is missing.  Meaningful after a run that \
     touches every layer, e.g. $(b,--fig latency)."
  in
  Arg.(value & flag & info [ "check-metrics" ] ~doc)

let cmd =
  let doc =
    "regenerate the evaluation of 'Optimizing the Latency of Streaming \
     Applications under Throughput and Reliability Constraints'"
  in
  let info = Cmd.info "experiments" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run_experiments $ names_arg $ fig_arg $ workload_arg $ quick_arg
      $ seed_arg $ jobs_arg $ out_arg $ exact_arg $ metrics_arg
      $ metrics_text_arg $ check_metrics_arg $ check_exact_arg)

let () = exit (Cmd.eval' cmd)
