(* The "symmetric" problems of the paper's conclusion (§6): instead of
   minimizing latency under a throughput constraint, find

     (a) the highest throughput sustainable under a latency budget and a
         reliability requirement, and
     (b) the most failures tolerable under both a latency budget and a
         throughput requirement —

   here for a Gaussian-elimination workflow on an 8-node cluster.

     dune exec examples/adaptive_throughput.exe
*)

let () =
  let platform =
    Platform.homogeneous ~name:"cluster8" ~m:8 ~speed:1.0 ~bandwidth:4.0 ()
  in
  let dag =
    Calibrate.normalize_time
      (Classic.gaussian_elimination ~n:6 ~exec:10.0 ~volume:4.0)
      platform
  in
  Printf.printf "Workflow: %s (%d tasks, %d edges)\n" (Dag.name dag)
    (Dag.size dag) (Dag.n_edges dag);

  (* (a) Maximize throughput with eps = 1 under a latency budget. *)
  let latency_bound = 120.0 in
  let result =
    Symmetric.max_throughput ~dag ~platform ~eps:1 ~latency_bound ()
  in
  (match result.Symmetric.best with
  | Some (throughput, mapping) ->
      Printf.printf
        "max throughput under L <= %.0f, eps = 1: T = 1/%.1f (S = %d, %d \
         oracle calls)\n"
        latency_bound (1.0 /. throughput)
        (Metrics.stage_depth mapping)
        result.Symmetric.evaluations
  | None ->
      Printf.printf "no feasible throughput under L <= %.0f with eps = 1\n"
        latency_bound);

  (* (b) Maximize the tolerated failures under both constraints. *)
  let throughput = 1.0 /. 30.0 in
  let result =
    Symmetric.max_failures ~dag ~platform ~throughput ~latency_bound ()
  in
  match result.Symmetric.best with
  | Some (eps, mapping) ->
      Printf.printf
        "max failures under L <= %.0f and T = 1/30: eps = %.0f (S = %d)\n"
        latency_bound eps
        (Metrics.stage_depth mapping);
      (* Demonstrate the guarantee by failing that many processors. *)
      let failed = List.init (int_of_float eps) Fun.id in
      (match Engine.latency ~failed mapping with
      | Some l ->
          Printf.printf "with processors {%s} down the latency is %.1f\n"
            (String.concat ", " (List.map string_of_int failed))
            l
      | None -> print_endline "outputs lost (unexpected)")
  | None -> print_endline "no eps is feasible under both constraints"
