examples/failure_drill.ml: Calibrate Classic Dag Engine List Platform Printf Recovery Rltf Scheduler Types Validate
