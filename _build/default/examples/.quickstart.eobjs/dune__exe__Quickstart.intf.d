examples/quickstart.mli:
