examples/adaptive_throughput.ml: Calibrate Classic Dag Engine Fun List Metrics Platform Printf String Symmetric
