examples/worked_example.ml: Classic Engine Format Gantt List Ltf Mapping Metrics Printf Rltf Types
