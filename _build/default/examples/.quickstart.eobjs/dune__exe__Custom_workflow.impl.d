examples/custom_workflow.ml: Dag Engine Filename List Metrics Platform Platform_cost Printf Rltf String Svg_gantt Trace Types Workflow_io
