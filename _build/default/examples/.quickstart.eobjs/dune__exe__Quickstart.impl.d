examples/quickstart.ml: Array Dag Engine Format List Mapping Metrics Platform Printf Rltf Types Validate
