examples/worked_example.mli:
