examples/custom_workflow.mli:
