examples/video_pipeline.ml: Array Dag Engine Gantt List Ltf Metrics Platform Printf Rltf Types Validate
