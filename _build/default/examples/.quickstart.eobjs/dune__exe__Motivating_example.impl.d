examples/motivating_example.ml: Paper_examples
