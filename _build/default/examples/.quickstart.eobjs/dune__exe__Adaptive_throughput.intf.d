examples/adaptive_throughput.mli:
