(* The motivating example of the paper's introduction (Fig. 1): the same
   4-task workflow executed with task parallelism, data parallelism, and
   pipelining, showing the latency/throughput trade-off of each.

     dune exec examples/motivating_example.exe
*)

let () = Paper_examples.print ()
