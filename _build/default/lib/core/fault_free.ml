let run ?mode ~dag ~platform ~throughput () =
  Rltf.run ?mode (Types.problem ~dag ~platform ~eps:0 ~throughput)

let latency ?mode ~dag ~platform ~throughput () =
  match run ?mode ~dag ~platform ~throughput () with
  | Error _ -> None
  | Ok mapping -> Engine.latency mapping
