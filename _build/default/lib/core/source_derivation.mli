(** Derive fault-tolerant forward source sets for fixed replica placements.

    The bottom-up R-LTF run decides {e where} every replica lives, but its
    pairing structure is expressed in the reverse data-flow direction and
    does not by itself bound the forward kill chains.  This module rebuilds
    the communication structure in the forward direction, under the same
    support-set discipline as the forward scheduler: per predecessor, a
    replica receives from a co-located replica when one is available with a
    kill set disjoint from its siblings', else from the cheapest remote
    replica with a disjoint kill set, else from the full replica group
    (which no single failure can silence).  Sibling processors are claimed
    up front, so the resulting kill sets of each task's replicas are
    pairwise disjoint by construction and the mapping tolerates ε
    fail-silent processor failures. *)

val derive :
  ?throughput:float ->
  ?hint:(Dag.task -> int -> Dag.task -> Replica.id list) ->
  dag:Dag.t ->
  platform:Platform.t ->
  eps:int ->
  proc_of:(Dag.task -> int -> Platform.proc) ->
  unit ->
  Mapping.t
(** [derive ~dag ~platform ~eps ~proc_of] builds a complete mapping whose
    replica [copy] of [task] sits on [proc_of task copy].  The placements
    must put replicas of the same task on pairwise distinct processors.
    The result always satisfies the structural and fault-tolerance
    invariants; the throughput of the derived communication structure is
    the caller's to check. *)

(** The optional [hint] returns, for (task, copy, predecessor), preferred
    source replicas — e.g. the pairing recorded by a previous scheduling
    pass whose communication cost was already charged against the period.
    Hinted sources are preferred among equally-usable remote sources. *)
