(** Exact minimum-stage scheduling for small instances (ε = 0).

    A branch-and-bound search over task → processor assignments that
    minimizes the pipeline stage number [S] (hence the latency
    [(2S−1)/T]) subject to condition (1): per-processor computing load and
    one-port send/receive loads within the period.  Intended as an
    optimality reference for the heuristics on instances of up to roughly
    a dozen tasks — the search is exponential in the task count.

    Pruning: tasks are placed in topological order; the partial stage
    number only grows, so branches meeting the incumbent are cut;
    processors are explored least-index-first with symmetry breaking on
    platforms whose processors are interchangeable. *)

type result = {
  stages : int;              (** the optimal pipeline stage number *)
  mapping : Mapping.t;       (** an optimal ε = 0 mapping *)
  explored : int;            (** search nodes visited *)
}

val minimum_stages :
  ?node_limit:int ->
  dag:Dag.t ->
  platform:Platform.t ->
  throughput:float ->
  unit ->
  result option
(** [None] when no assignment satisfies the throughput constraint, or when
    the search exceeds [node_limit] (default 2_000_000) without proving
    optimality — partial results are never returned.
    @raise Invalid_argument if the graph has more than 24 tasks (the
    search would be hopeless anyway). *)
