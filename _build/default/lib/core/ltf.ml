let run_state ?mode ?opts prob =
  Scheduler.run ?mode ?opts ~rank:Scheduler.by_finish_time prob

let run ?mode ?opts prob = Result.map State.mapping (run_state ?mode ?opts prob)
