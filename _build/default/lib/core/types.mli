(** Problem statements and outcomes shared by the scheduling algorithms. *)

type problem = {
  dag : Dag.t;
  platform : Platform.t;
  eps : int;  (** number of tolerated processor failures ε *)
  throughput : float;  (** desired throughput T; the period is Δ = 1/T *)
}

val problem :
  dag:Dag.t -> platform:Platform.t -> eps:int -> throughput:float -> problem
(** Checked constructor.
    @raise Invalid_argument if [eps < 0], [eps >= m] or
    [throughput <= 0]. *)

val period : problem -> float
(** [Δ = 1 / T]. *)

type failure =
  | No_feasible_processor of Dag.task * int
      (** no processor could host the given (task, copy) without violating
          the throughput constraint or the locking rules *)
  | Derived_overload of Platform.proc * float
      (** strict R-LTF only: the bottom-up placements were feasible, but no
          forward fault-tolerant communication structure fits the period on
          the given processor (whose cycle time is reported) *)

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string

type outcome = (Mapping.t, failure) result
