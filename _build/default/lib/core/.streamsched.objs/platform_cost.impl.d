lib/core/platform_cost.ml: Array List Mapping Metrics Platform Rltf Types
