lib/core/scheduler.ml: Array Dag Float Levels List Mapping Option Platform Printf Replica Set State String Sys Types
