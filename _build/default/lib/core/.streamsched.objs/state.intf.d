lib/core/state.mli: Dag Mapping Platform Replica Set Types
