lib/core/source_derivation.mli: Dag Mapping Platform Replica
