lib/core/rltf.mli: Scheduler State Types
