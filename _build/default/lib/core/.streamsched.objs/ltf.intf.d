lib/core/ltf.mli: Scheduler State Types
