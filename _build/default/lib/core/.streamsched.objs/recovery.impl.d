lib/core/recovery.ml: Array Dag Format List Mapping Platform Replica Source_derivation
