lib/core/optimal.ml: Array Dag List Mapping Platform Source_derivation Topo
