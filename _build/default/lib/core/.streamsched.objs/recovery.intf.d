lib/core/recovery.mli: Dag Format Mapping Platform
