lib/core/ltf.ml: Result Scheduler State
