lib/core/symmetric.ml: Dag List Mapping Metrics Platform Rltf Types
