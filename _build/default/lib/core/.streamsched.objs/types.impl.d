lib/core/types.ml: Dag Format Mapping Platform
