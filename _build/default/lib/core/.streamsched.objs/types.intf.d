lib/core/types.mli: Dag Format Mapping Platform
