lib/core/fault_free.ml: Engine Rltf Types
