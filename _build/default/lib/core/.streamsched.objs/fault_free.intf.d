lib/core/fault_free.mli: Dag Platform Scheduler Types
