lib/core/source_derivation.ml: Array Dag Fun Int List Mapping Platform Replica Set Topo
