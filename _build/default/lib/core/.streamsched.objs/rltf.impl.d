lib/core/rltf.ml: Array Dag List Loads Mapping Metrics Replica Scheduler Source_derivation State Types
