lib/core/scheduler.mli: State Types
