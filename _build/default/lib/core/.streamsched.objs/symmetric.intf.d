lib/core/symmetric.mli: Dag Mapping Platform
