lib/core/platform_cost.mli: Dag Mapping Platform
