lib/core/state.ml: Array Dag Float Hashtbl Int List Mapping Platform Printf Replica Set Timeline Types
