lib/core/optimal.mli: Dag Mapping Platform
