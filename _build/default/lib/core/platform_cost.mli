(** Platform cost minimization — the last extension sketched in §6:
    "minimize the 'rental' cost of the platform while enforcing the other
    criteria".

    Each processor carries a rental cost (by default its speed, i.e. fast
    machines are expensive).  The optimizer searches for a cheap subset of
    the platform on which R-LTF still meets the throughput, the latency
    bound and the replication degree, by greedy backward elimination: start
    from the full platform, repeatedly try to evict the most expensive
    processor whose removal keeps the instance schedulable, until no
    eviction survives.  This is a heuristic (the exact problem generalizes
    bin covering); its result is always feasible and never costlier than
    the full platform. *)

type result = {
  kept : Platform.proc list;
      (** processors of the original platform that remain rented *)
  cost : float;           (** total cost of the kept processors *)
  full_cost : float;      (** cost of the whole platform, for reference *)
  mapping : Mapping.t;
      (** schedule on the reduced platform; its processor indices refer to
          [kept] positions, not to the original platform *)
  evaluations : int;      (** R-LTF oracle calls *)
}

val minimize :
  ?cost_of:(Platform.proc -> float) ->
  ?latency_bound:float ->
  dag:Dag.t ->
  platform:Platform.t ->
  eps:int ->
  throughput:float ->
  unit ->
  result option
(** [None] when even the full platform cannot host the instance.
    [cost_of] defaults to the processor speed; [latency_bound] defaults to
    unbounded. *)
