(** The "symmetric" problems sketched in §6.

    The paper's conclusion proposes two variants of the tri-criteria
    problem: maximize the throughput for a given latency and failure
    number, and maximize the number of supported failures for a given
    latency and throughput.  Both are solved here by search over the
    monotone axis, calling R-LTF as the feasibility oracle and the
    pipelined latency bound [L = (2S − 1)/T] as the latency measure. *)

type search_result = {
  best : (float * Mapping.t) option;
      (** best feasible (objective value, mapping); [None] if nothing
          feasible was found *)
  evaluations : int;  (** number of oracle calls *)
}

val max_throughput :
  ?iterations:int ->
  dag:Dag.t ->
  platform:Platform.t ->
  eps:int ->
  latency_bound:float ->
  unit ->
  search_result
(** Binary search (default 32 iterations) for the largest throughput [T]
    such that R-LTF finds a schedule whose latency bound does not exceed
    [latency_bound].  The search interval is [(0, T_max]] where [T_max]
    is the work-conservation bound [Σ_u s_u / ((ε+1) · Σ_t E(t))].  The
    objective value returned is the throughput. *)

val max_failures :
  dag:Dag.t ->
  platform:Platform.t ->
  throughput:float ->
  latency_bound:float ->
  unit ->
  search_result
(** Largest [ε < m] such that R-LTF schedules the graph at the given
    throughput within the latency bound (downward linear scan: feasibility
    is not monotone in ε for a heuristic oracle, so every value is
    tried).  The objective value returned is [ε] as a float. *)
