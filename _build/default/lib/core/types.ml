type problem = {
  dag : Dag.t;
  platform : Platform.t;
  eps : int;
  throughput : float;
}

let problem ~dag ~platform ~eps ~throughput =
  if eps < 0 then invalid_arg "Types.problem: negative eps";
  if eps >= Platform.size platform then
    invalid_arg "Types.problem: eps must be smaller than the processor count";
  if throughput <= 0.0 then invalid_arg "Types.problem: non-positive throughput";
  { dag; platform; eps; throughput }

let period p = 1.0 /. p.throughput

type failure =
  | No_feasible_processor of Dag.task * int
  | Derived_overload of Platform.proc * float

let pp_failure ppf = function
  | No_feasible_processor (task, copy) ->
      Format.fprintf ppf
        "no processor can host replica t%d(%d) under the throughput constraint"
        task copy
  | Derived_overload (proc, delta) ->
      Format.fprintf ppf
        "the derived communication structure loads P%d to a cycle time of %g, \
         beyond the period"
        proc delta

let failure_to_string f = Format.asprintf "%a" pp_failure f

type outcome = (Mapping.t, failure) result
