type result = {
  stages : int;
  mapping : Mapping.t;
  explored : int;
}

exception Node_limit

let minimum_stages ?(node_limit = 2_000_000) ~dag ~platform ~throughput () =
  let n = Dag.size dag in
  if n > 24 then invalid_arg "Optimal.minimum_stages: more than 24 tasks";
  let m = Platform.size platform in
  let delta = 1.0 /. throughput in
  let slack = delta *. (1.0 +. 1e-9) in
  let order = Topo.order dag in
  (* Symmetry breaking is sound only when processors are interchangeable. *)
  let homogeneous =
    let s0 = Platform.speed platform 0 in
    let speeds_equal =
      List.for_all (fun u -> Platform.speed platform u = s0) (Platform.procs platform)
    in
    let bw0 = if m > 1 then Platform.bandwidth platform 0 1 else 1.0 in
    speeds_equal
    && List.for_all
         (fun u ->
           List.for_all
             (fun v -> u = v || Platform.bandwidth platform u v = bw0)
             (Platform.procs platform))
         (Platform.procs platform)
  in
  let assignment = Array.make n (-1) in
  let stage = Array.make n 0 in
  let sigma = Array.make m 0.0 in
  let c_in = Array.make m 0.0 and c_out = Array.make m 0.0 in
  let best_stages = ref max_int in
  let best_assignment = Array.make n 0 in
  let explored = ref 0 in
  let rec search i partial_s used =
    incr explored;
    if !explored > node_limit then raise Node_limit;
    if partial_s >= !best_stages then () (* can only get worse *)
    else if i = n then begin
      best_stages := partial_s;
      Array.blit assignment 0 best_assignment 0 n
    end
    else begin
      let task = order.(i) in
      let preds = Dag.preds dag task in
      let proc_bound = if homogeneous then min (m - 1) (used + 1) else m - 1 in
      for p = 0 to proc_bound do
        (* incremental feasibility + stage *)
        let exec = Platform.exec_time platform p (Dag.exec dag task) in
        if sigma.(p) +. exec <= slack then begin
          let s =
            List.fold_left
              (fun acc (q, _) ->
                let eta = if assignment.(q) = p then 0 else 1 in
                max acc (stage.(q) + eta))
              1 preds
          in
          if max s partial_s < !best_stages then begin
            (* charge the transfers, checking the port budgets *)
            let feasible = ref true in
            let charged = ref [] in
            List.iter
              (fun (q, vol) ->
                if !feasible && assignment.(q) <> p then begin
                  let time = Platform.comm_time platform assignment.(q) p vol in
                  if
                    c_out.(assignment.(q)) +. time <= slack
                    && c_in.(p) +. time <= slack
                  then begin
                    c_out.(assignment.(q)) <- c_out.(assignment.(q)) +. time;
                    c_in.(p) <- c_in.(p) +. time;
                    charged := (assignment.(q), time) :: !charged
                  end
                  else feasible := false
                end)
              preds;
            if !feasible then begin
              sigma.(p) <- sigma.(p) +. exec;
              assignment.(task) <- p;
              stage.(task) <- s;
              search (i + 1) (max s partial_s) (max used p);
              assignment.(task) <- -1;
              stage.(task) <- 0;
              sigma.(p) <- sigma.(p) -. exec
            end;
            List.iter
              (fun (q_proc, time) ->
                c_out.(q_proc) <- c_out.(q_proc) -. time;
                c_in.(p) <- c_in.(p) -. time)
              !charged
          end
        end
      done
    end
  in
  match if n = 0 then Some 0 else None with
  | Some _ ->
      (* empty graph: trivially zero stages *)
      Some
        {
          stages = 0;
          mapping = Mapping.create ~dag ~platform ~eps:0;
          explored = 0;
        }
  | None -> (
      match search 0 0 (-1) with
      | () ->
          if !best_stages = max_int then None
          else begin
            let mapping =
              Source_derivation.derive ~throughput ~dag ~platform ~eps:0
                ~proc_of:(fun task _ -> best_assignment.(task))
                ()
            in
            Some { stages = !best_stages; mapping; explored = !explored }
          end
      | exception Node_limit -> None)
