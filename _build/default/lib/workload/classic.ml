let labelled name n exec edges =
  let b = Dag.Builder.create ~name n in
  List.iteri (fun i w -> Dag.Builder.set_exec b i w) exec;
  List.iter (fun (s, d, v) -> Dag.Builder.add_edge b ~volume:v s d) edges;
  (* Labels t1 .. tn to match the paper's numbering. *)
  for i = 0 to n - 1 do
    Dag.Builder.set_label b i (Printf.sprintf "t%d" (i + 1))
  done;
  Dag.Builder.build b

let fig1_graph =
  labelled "fig1" 4
    [ 15.0; 15.0; 15.0; 15.0 ]
    [ (0, 1, 2.0); (0, 2, 2.0); (1, 3, 2.0); (2, 3, 2.0) ]

let fig1_platform =
  Platform.create ~name:"fig1-platform"
    ~speeds:[| 1.5; 1.0; 1.5; 1.0 |]
    ~bandwidth:(Array.make_matrix 4 4 1.0)
    ()

let fig2_graph =
  labelled "fig2" 7
    [ 15.0; 6.0; 20.0; 5.0; 5.0; 6.0; 15.0 ]
    [
      (0, 1, 2.0);
      (0, 2, 2.0);
      (1, 3, 2.0);
      (1, 4, 2.0);
      (1, 5, 2.0);
      (3, 5, 2.0);
      (4, 5, 2.0);
      (2, 6, 2.0);
      (5, 6, 2.0);
    ]

let fig2_platform ~m =
  Platform.homogeneous ~name:"fig2-platform" ~m ~speed:1.0 ~bandwidth:1.0 ()

let chain ~n ~exec ~volume =
  let b = Dag.Builder.create ~name:"chain" n in
  for i = 0 to n - 1 do
    Dag.Builder.set_exec b i exec;
    if i > 0 then Dag.Builder.add_edge b ~volume (i - 1) i
  done;
  Dag.Builder.build b

let fork_join ~width ~exec ~volume =
  if width < 1 then invalid_arg "Classic.fork_join: width < 1";
  let n = width + 2 in
  let b = Dag.Builder.create ~name:"fork-join" n in
  for i = 0 to n - 1 do
    Dag.Builder.set_exec b i exec
  done;
  for k = 1 to width do
    Dag.Builder.add_edge b ~volume 0 k;
    Dag.Builder.add_edge b ~volume k (n - 1)
  done;
  Dag.Builder.build b

let diamond ~levels ~exec ~volume =
  if levels < 1 then invalid_arg "Classic.diamond: levels < 1";
  (* Level sizes 1, 2, ..., levels, ..., 2, 1. *)
  let sizes =
    List.init levels (fun i -> i + 1) @ List.init (levels - 1) (fun i -> levels - 1 - i)
  in
  let offsets, total =
    List.fold_left
      (fun (offsets, sum) size -> (sum :: offsets, sum + size))
      ([], 0) sizes
  in
  let offsets = Array.of_list (List.rev offsets) in
  let sizes = Array.of_list sizes in
  let b = Dag.Builder.create ~name:"diamond" total in
  for i = 0 to total - 1 do
    Dag.Builder.set_exec b i exec
  done;
  for level = 0 to Array.length sizes - 2 do
    let here = sizes.(level) and next = sizes.(level + 1) in
    for i = 0 to here - 1 do
      let src = offsets.(level) + i in
      if next > here then begin
        (* widening: task i feeds i and i+1 *)
        Dag.Builder.add_edge b ~volume src (offsets.(level + 1) + i);
        Dag.Builder.add_edge b ~volume src (offsets.(level + 1) + i + 1)
      end
      else begin
        (* narrowing: task i feeds i-1 and i when they exist *)
        if i - 1 >= 0 && i - 1 < next then
          Dag.Builder.add_edge b ~volume src (offsets.(level + 1) + i - 1);
        if i < next then Dag.Builder.add_edge b ~volume src (offsets.(level + 1) + i)
      end
    done
  done;
  Dag.Builder.build b

let fft ~p ~exec ~volume =
  if p < 1 then invalid_arg "Classic.fft: p < 1";
  let rows = 1 lsl p in
  let n = rows * (p + 1) in
  let b = Dag.Builder.create ~name:(Printf.sprintf "fft-%d" rows) n in
  let id col row = (col * rows) + row in
  for i = 0 to n - 1 do
    Dag.Builder.set_exec b i exec
  done;
  for col = 0 to p - 1 do
    for row = 0 to rows - 1 do
      Dag.Builder.add_edge b ~volume (id col row) (id (col + 1) row);
      Dag.Builder.add_edge b ~volume (id col row) (id (col + 1) (row lxor (1 lsl col)))
    done
  done;
  Dag.Builder.build b

let gaussian_elimination ~n ~exec ~volume =
  if n < 2 then invalid_arg "Classic.gaussian_elimination: n < 2";
  (* Step k has a pivot task and update tasks for columns k+1 .. n-1; the
     pivot feeds every update of its step, and update (k, j) feeds both the
     pivot and update tasks of step k+1 that touch column j. *)
  let ids = Hashtbl.create 64 in
  let counter = ref 0 in
  let fresh key =
    Hashtbl.replace ids key !counter;
    incr counter
  in
  for k = 0 to n - 2 do
    fresh (`Pivot k);
    for j = k + 1 to n - 1 do
      fresh (`Update (k, j))
    done
  done;
  let b = Dag.Builder.create ~name:(Printf.sprintf "gauss-%d" n) !counter in
  for i = 0 to !counter - 1 do
    Dag.Builder.set_exec b i exec
  done;
  let id key = Hashtbl.find ids key in
  for k = 0 to n - 2 do
    for j = k + 1 to n - 1 do
      Dag.Builder.add_edge b ~volume (id (`Pivot k)) (id (`Update (k, j)));
      if k + 1 <= n - 2 && j >= k + 1 then begin
        if j = k + 1 then
          Dag.Builder.add_edge b ~volume (id (`Update (k, j))) (id (`Pivot (k + 1)))
        else
          Dag.Builder.add_edge b ~volume
            (id (`Update (k, j)))
            (id (`Update (k + 1, j)))
      end
    done
  done;
  Dag.Builder.build b

let stencil ~rows ~cols ~exec ~volume =
  if rows < 1 || cols < 1 then invalid_arg "Classic.stencil: empty grid";
  let b = Dag.Builder.create ~name:"stencil" (rows * cols) in
  let id i j = (i * cols) + j in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      Dag.Builder.set_exec b (id i j) exec;
      if i + 1 < rows then Dag.Builder.add_edge b ~volume (id i j) (id (i + 1) j);
      if j + 1 < cols then Dag.Builder.add_edge b ~volume (id i j) (id i (j + 1))
    done
  done;
  Dag.Builder.build b

let tree_size ~depth ~arity =
  (* 1 + a + a^2 + ... + a^depth *)
  let rec total level acc width =
    if level > depth then acc else total (level + 1) (acc + width) (width * arity)
  in
  total 0 0 1

let in_tree ~depth ~arity ~exec ~volume =
  if depth < 0 then invalid_arg "Classic.in_tree: negative depth";
  if arity < 1 then invalid_arg "Classic.in_tree: arity < 1";
  let n = tree_size ~depth ~arity in
  let b = Dag.Builder.create ~name:"in-tree" n in
  for i = 0 to n - 1 do
    Dag.Builder.set_exec b i exec
  done;
  (* node 0 is the root; children of i are arity*i+1 .. arity*i+arity,
     and every child feeds its parent *)
  for i = 1 to n - 1 do
    Dag.Builder.add_edge b ~volume i ((i - 1) / arity)
  done;
  Dag.Builder.build b

let out_tree ~depth ~arity ~exec ~volume =
  Dag.reverse (in_tree ~depth ~arity ~exec ~volume)

let stream_pipeline ~stages ~branches ~exec ~volume =
  if stages < 1 then invalid_arg "Classic.stream_pipeline: stages < 1";
  if branches < 1 then invalid_arg "Classic.stream_pipeline: branches < 1";
  (* per segment: a splitter, [branches] filters, a joiner; joiners feed
     the next splitter *)
  let per = branches + 2 in
  let n = stages * per in
  let b = Dag.Builder.create ~name:"stream-pipeline" n in
  for i = 0 to n - 1 do
    Dag.Builder.set_exec b i exec
  done;
  for s = 0 to stages - 1 do
    let split = s * per in
    let join = split + per - 1 in
    Dag.Builder.set_label b split (Printf.sprintf "split%d" s);
    Dag.Builder.set_label b join (Printf.sprintf "join%d" s);
    for k = 1 to branches do
      Dag.Builder.set_label b (split + k) (Printf.sprintf "filter%d.%d" s k);
      Dag.Builder.add_edge b ~volume split (split + k);
      Dag.Builder.add_edge b ~volume (split + k) join
    done;
    if s > 0 then Dag.Builder.add_edge b ~volume ((s - 1) * per + per - 1) split
  done;
  Dag.Builder.build b
