let with_granularity dag plat ~target =
  if target <= 0.0 then invalid_arg "Calibrate.with_granularity: target <= 0";
  let current = Metrics.granularity dag plat in
  if current = infinity then
    invalid_arg "Calibrate.with_granularity: graph has no communication";
  let factor = target /. current in
  Dag.map_weights ~exec:(fun _ w -> w *. factor) dag

let normalize_time dag plat =
  let n = Dag.size dag in
  if n = 0 then dag
  else begin
    let mean_exec = Dag.total_exec dag /. float_of_int n in
    let mean_time = mean_exec *. Platform.mean_inverse_speed plat in
    if mean_time <= 0.0 then dag
    else begin
      let factor = 1.0 /. mean_time in
      Dag.map_weights
        ~exec:(fun _ w -> w *. factor)
        ~volume:(fun _ _ v -> v *. factor)
        dag
    end
  end

let calibrated dag plat ~granularity =
  normalize_time (with_granularity dag plat ~target:granularity) plat
