(** Random task-graph generators.

    Three structural families used across the scheduling literature (and
    by the paper's references [1, 4, 8, 11]): layered graphs, bounded
    fan-in/fan-out graphs, and series-parallel graphs.  All weights are
    drawn from caller-supplied ranges; granularity calibration is applied
    separately by {!Calibrate}. *)

type weight_spec = {
  exec_range : float * float;    (** task execution weights, e.g. (50, 150) *)
  volume_range : float * float;  (** edge data volumes, e.g. (50, 150) *)
}

val default_weights : weight_spec
(** [(50, 150)] for both, the ranges of §5. *)

val layered :
  ?weights:weight_spec ->
  rng:Rng.t ->
  tasks:int ->
  ?layers:int ->
  ?edge_density:float ->
  unit ->
  Dag.t
(** Tasks spread over [layers] layers (default [⌈√tasks⌉]); every non-entry
    task receives at least one edge from the previous layer, plus extra
    forward edges drawn with probability [edge_density] (default 0.15,
    between consecutive layers only, keeping fan-in moderate). *)

val fan_in_out :
  ?weights:weight_spec ->
  rng:Rng.t ->
  tasks:int ->
  ?max_degree:int ->
  unit ->
  Dag.t
(** Random orientation-free growth: each new task picks between 1 and
    [max_degree] (default 3) predecessors among existing tasks, biased
    toward recent ones so depth grows. *)

val series_parallel :
  ?weights:weight_spec ->
  rng:Rng.t ->
  tasks:int ->
  unit ->
  Dag.t
(** A two-terminal series-parallel graph built by random series/parallel
    expansions until at least [tasks] tasks exist.  Always satisfies
    {!Sp.is_series_parallel}. *)
