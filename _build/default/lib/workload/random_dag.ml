type weight_spec = {
  exec_range : float * float;
  volume_range : float * float;
}

let default_weights = { exec_range = (50.0, 150.0); volume_range = (50.0, 150.0) }

let draw rng (lo, hi) = Rng.uniform rng ~lo ~hi

let apply_weights ~weights ~rng b n edges =
  for t = 0 to n - 1 do
    Dag.Builder.set_exec b t (draw rng weights.exec_range)
  done;
  List.iter
    (fun (s, d) -> Dag.Builder.add_edge b ~volume:(draw rng weights.volume_range) s d)
    edges

let layered ?(weights = default_weights) ~rng ~tasks ?layers ?(edge_density = 0.15)
    () =
  if tasks < 1 then invalid_arg "Random_dag.layered: tasks < 1";
  let n_layers =
    match layers with
    | Some l -> max 1 (min l tasks)
    | None -> max 1 (int_of_float (Float.ceil (sqrt (float_of_int tasks))))
  in
  (* Partition tasks into layers: at least one per layer, the rest spread
     uniformly. *)
  let layer_of = Array.make tasks 0 in
  for t = 0 to tasks - 1 do
    layer_of.(t) <- (if t < n_layers then t else Rng.int rng n_layers)
  done;
  Array.sort compare layer_of;
  let members = Array.make n_layers [] in
  Array.iteri (fun t layer -> members.(layer) <- t :: members.(layer)) layer_of;
  let edges = ref [] in
  for layer = 1 to n_layers - 1 do
    let prev = members.(layer - 1) in
    List.iter
      (fun t ->
        (* one guaranteed predecessor, then density-driven extras *)
        let anchor = Rng.choose rng prev in
        edges := (anchor, t) :: !edges;
        List.iter
          (fun p ->
            if p <> anchor && Rng.bool rng edge_density then
              edges := (p, t) :: !edges)
          prev)
      members.(layer)
  done;
  let b = Dag.Builder.create ~name:"layered" tasks in
  apply_weights ~weights ~rng b tasks (List.rev !edges);
  Dag.Builder.build b

let fan_in_out ?(weights = default_weights) ~rng ~tasks ?(max_degree = 3) () =
  if tasks < 1 then invalid_arg "Random_dag.fan_in_out: tasks < 1";
  let edges = ref [] in
  for t = 1 to tasks - 1 do
    let n_preds = min t (1 + Rng.int rng max_degree) in
    (* Bias predecessor picks toward recent tasks: sample offsets
       geometrically, falling back to uniform. *)
    let chosen = Hashtbl.create 4 in
    let attempts = ref 0 in
    while Hashtbl.length chosen < n_preds && !attempts < 8 * n_preds do
      incr attempts;
      let back = 1 + Rng.int rng (min t (2 * max_degree)) in
      let candidate = if Rng.bool rng 0.7 then t - back else Rng.int rng t in
      if candidate >= 0 && candidate < t then
        Hashtbl.replace chosen candidate ()
    done;
    if Hashtbl.length chosen = 0 then Hashtbl.replace chosen (t - 1) ();
    Hashtbl.iter (fun p () -> edges := (p, t) :: !edges) chosen
  done;
  let b = Dag.Builder.create ~name:"fan-in-out" tasks in
  apply_weights ~weights ~rng b tasks (List.rev !edges);
  Dag.Builder.build b

(* Series-parallel generation by the defining construction: start from the
   single edge source → sink and repeatedly pick a random edge, either
   subdividing it (series: insert a fresh task) or duplicating it
   (parallel).  Duplicate edges are collapsed at the end (the DAG carries
   at most one edge per task pair), which is itself a parallel reduction,
   so the result is two-terminal series-parallel by construction. *)
let series_parallel ?(weights = default_weights) ~rng ~tasks () =
  if tasks < 1 then invalid_arg "Random_dag.series_parallel: tasks < 1";
  let target = max 2 tasks in
  let n_vertices = ref 2 in
  let edges = ref [| (0, 1) |] in
  let n_edges = ref 1 in
  let push e =
    if !n_edges = Array.length !edges then begin
      let bigger = Array.make (2 * !n_edges) (0, 0) in
      Array.blit !edges 0 bigger 0 !n_edges;
      edges := bigger
    end;
    !edges.(!n_edges) <- e;
    incr n_edges
  in
  while !n_vertices < target do
    let i = Rng.int rng !n_edges in
    let u, v = !edges.(i) in
    if Rng.bool rng 0.6 then begin
      (* series: subdivide with a fresh task *)
      let w = !n_vertices in
      incr n_vertices;
      !edges.(i) <- (u, w);
      push (w, v)
    end
    else push (u, v) (* parallel: duplicate; collapsed when materializing *)
  done;
  let seen = Hashtbl.create (2 * !n_edges) in
  let unique = ref [] in
  for i = 0 to !n_edges - 1 do
    let e = !edges.(i) in
    if not (Hashtbl.mem seen e) then begin
      Hashtbl.add seen e ();
      unique := e :: !unique
    end
  done;
  let b = Dag.Builder.create ~name:"series-parallel" !n_vertices in
  apply_weights ~weights ~rng b !n_vertices (List.rev !unique);
  Dag.Builder.build b
