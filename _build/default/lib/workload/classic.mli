(** Fixed graphs: the paper's two examples and standard task-graph
    families from the scheduling literature. *)

val fig1_graph : Dag.t
(** The motivating example of §1 (Fig. 1(a)): four tasks
    [t1 → t2, t1 → t3, t2 → t4, t3 → t4], every execution time 15, every
    edge volume 2. *)

val fig1_platform : Platform.t
(** Four processors with speeds (1.5, 1, 1.5, 1) and unit-bandwidth
    links. *)

val fig2_graph : Dag.t
(** The worked example of §4.3 (Fig. 2(a)), reconstructed from the
    scheduling traces in the text: [t1 → {t2, t3}], [t2 → {t4, t5, t6}],
    [{t4, t5} → t6], [{t3, t6} → t7]; execution times
    (15, 6, 20, 5, 5, 6, 15), every edge volume 2. *)

val fig2_platform : m:int -> Platform.t
(** The homogeneous platform of §4.3: [m] unit-speed processors with
    bandwidth such that transferring one edge's volume takes 2 time units
    (volume 2, unit bandwidth). *)

val chain : n:int -> exec:float -> volume:float -> Dag.t
(** A linear pipeline of [n] tasks. *)

val fork_join : width:int -> exec:float -> volume:float -> Dag.t
(** One source fanning out to [width] parallel tasks joined by one sink. *)

val diamond : levels:int -> exec:float -> volume:float -> Dag.t
(** A diamond lattice: levels of sizes 1, 2, …, up to [levels], back down
    to 1, each task feeding its neighbours in the next level. *)

val fft : p:int -> exec:float -> volume:float -> Dag.t
(** The butterfly task graph of a [2^p]-point FFT: [p + 1] columns of
    [2^p] tasks, task [i] of column [c] feeding tasks [i] and
    [i lxor 2^c] of column [c + 1]. *)

val gaussian_elimination : n:int -> exec:float -> volume:float -> Dag.t
(** The classic Gaussian-elimination task graph on an [n × n] matrix:
    pivot column tasks feeding the update tasks of the trailing
    submatrix. *)

val stencil : rows:int -> cols:int -> exec:float -> volume:float -> Dag.t
(** A [rows × cols] wavefront: task [(i, j)] feeds [(i+1, j)] and
    [(i, j+1)]. *)

val in_tree : depth:int -> arity:int -> exec:float -> volume:float -> Dag.t
(** A complete reduction tree: [arity^depth] leaves merging down to one
    root (the single exit task).  Depth 0 is a single task. *)

val out_tree : depth:int -> arity:int -> exec:float -> volume:float -> Dag.t
(** The transpose of {!in_tree}: one source broadcasting down to
    [arity^depth] leaves. *)

val stream_pipeline :
  stages:int -> branches:int -> exec:float -> volume:float -> Dag.t
(** A StreamIt-style pipeline: a chain of [stages] split/join segments,
    each fanning out to [branches] parallel filters — the archetypal
    "video and audio encoding" workflow shape of the paper's
    introduction. *)
