lib/workload/workflow_io.mli: Dag Platform
