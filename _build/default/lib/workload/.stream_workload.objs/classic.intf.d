lib/workload/classic.mli: Dag Platform
