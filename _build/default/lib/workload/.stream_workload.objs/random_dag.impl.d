lib/workload/random_dag.ml: Array Dag Float Hashtbl List Rng
