lib/workload/paper_workload.mli: Dag Platform Rng
