lib/workload/calibrate.ml: Dag Metrics Platform
