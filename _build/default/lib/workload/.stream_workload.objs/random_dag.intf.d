lib/workload/random_dag.mli: Dag Rng
