lib/workload/rng.mli:
