lib/workload/calibrate.mli: Dag Platform
