lib/workload/classic.ml: Array Dag Hashtbl List Platform Printf
