lib/workload/workflow_io.ml: Array Buffer Dag Fun Hashtbl List Option Platform Printf String
