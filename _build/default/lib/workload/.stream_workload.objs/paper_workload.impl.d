lib/workload/paper_workload.ml: Array Calibrate Classic Dag Hashtbl List Platform Random_dag Rng
