(** Granularity calibration and time normalization (§5, and DESIGN.md §2).

    The evaluation sweeps the granularity
    [g(G, P) = Σ_t slowest-comp(t) / Σ_e slowest-comm(e)] from 0.2 to 2.0;
    weights are first drawn from the literature ranges and then the task
    execution weights are rescaled so the instance hits the requested
    granularity exactly.  A final uniform rescaling of both node and edge
    weights (which leaves the granularity invariant) normalizes the time
    unit so that the mean task execution time on an average-speed
    processor is 1 — making the paper's period [Δ = 10(ε+1)] feasible and
    its "normalized latency" scale meaningful. *)

val with_granularity : Dag.t -> Platform.t -> target:float -> Dag.t
(** Rescale every execution weight by a common factor so that
    [Metrics.granularity] equals [target].
    @raise Invalid_argument if the graph has no edge or [target <= 0]. *)

val normalize_time : Dag.t -> Platform.t -> Dag.t
(** Rescale execution weights and volumes by the common factor that makes
    [mean_t E(t) · mean_u (1/s_u) = 1]. *)

val calibrated : Dag.t -> Platform.t -> granularity:float -> Dag.t
(** {!with_granularity} followed by {!normalize_time}. *)
