type family =
  | Layered
  | Fan_in_out
  | Series_parallel
  | Stream_chain

type spec = {
  tasks_range : int * int;
  m : int;
  speed_range : float * float;
  unit_delay_range : float * float;
  exec_range : float * float;
  volume_range : float * float;
  family : family;
  edge_density : float;
}

let default_spec =
  {
    tasks_range = (50, 150);
    m = 20;
    speed_range = (0.5, 1.0);
    unit_delay_range = (0.5, 1.0);
    exec_range = (50.0, 150.0);
    volume_range = (50.0, 150.0);
    family = Layered;
    edge_density = 0.06;
  }

let granularities = List.init 10 (fun i -> 0.2 *. float_of_int (i + 1))

let throughput ~eps = 1.0 /. (10.0 *. float_of_int (eps + 1))

let platform ?(spec = default_spec) ~rng () =
  let lo_s, hi_s = spec.speed_range in
  let speeds = Array.init spec.m (fun _ -> Rng.uniform rng ~lo:lo_s ~hi:hi_s) in
  let lo_d, hi_d = spec.unit_delay_range in
  let bw = Array.make_matrix spec.m spec.m 1.0 in
  for k = 0 to spec.m - 1 do
    for h = k + 1 to spec.m - 1 do
      let delay = Rng.uniform rng ~lo:lo_d ~hi:hi_d in
      bw.(k).(h) <- 1.0 /. delay;
      bw.(h).(k) <- 1.0 /. delay
    done
  done;
  Platform.create ~name:"paper-platform" ~speeds ~bandwidth:bw ()

type instance = {
  dag : Dag.t;
  plat : Platform.t;
  granularity : float;
}

let instance ?(spec = default_spec) ~rng ~granularity () =
  let lo_t, hi_t = spec.tasks_range in
  let tasks = Rng.uniform_int rng ~lo:lo_t ~hi:hi_t in
  let weights =
    {
      Random_dag.exec_range = spec.exec_range;
      volume_range = spec.volume_range;
    }
  in
  let dag =
    match spec.family with
    | Layered ->
        Random_dag.layered ~weights ~rng ~tasks ~edge_density:spec.edge_density ()
    | Fan_in_out -> Random_dag.fan_in_out ~weights ~rng ~tasks ~max_degree:2 ()
    | Series_parallel -> Random_dag.series_parallel ~weights ~rng ~tasks ()
    | Stream_chain ->
        (* split/join pipeline of the requested size, with random weights
           drawn once per task/edge (map_weights visits each edge twice —
           once per adjacency direction — so the draws must be
           precomputed) *)
        let branches = 3 in
        let stages = max 1 (tasks / (branches + 2)) in
        let skeleton =
          Classic.stream_pipeline ~stages ~branches ~exec:1.0 ~volume:1.0
        in
        let lo_e, hi_e = spec.exec_range and lo_v, hi_v = spec.volume_range in
        let execs =
          Array.init (Dag.size skeleton) (fun _ -> Rng.uniform rng ~lo:lo_e ~hi:hi_e)
        in
        let vols = Hashtbl.create (Dag.n_edges skeleton) in
        Dag.iter_edges skeleton (fun s d _ ->
            Hashtbl.replace vols (s, d) (Rng.uniform rng ~lo:lo_v ~hi:hi_v));
        Dag.map_weights
          ~exec:(fun t _ -> execs.(t))
          ~volume:(fun s d _ -> Hashtbl.find vols (s, d))
          skeleton
  in
  let plat = platform ~spec ~rng () in
  let dag = Calibrate.calibrated dag plat ~granularity in
  { dag; plat; granularity }
