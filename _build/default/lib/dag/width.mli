(** Width of a task graph.

    The width ω of a DAG is the size of its largest antichain (the maximum
    number of pairwise-independent tasks); it bounds the number of tasks that
    can be simultaneously ready during list scheduling (§2). *)

val layer_lower_bound : Dag.t -> int
(** Size of the largest depth layer — a cheap lower bound on ω (every layer
    is an antichain). *)

val exact : Dag.t -> int
(** Exact ω via Dilworth's theorem: ω = v − size of a maximum matching in
    the bipartite graph of the transitive closure.  Uses Hopcroft–Karp-style
    augmenting paths; quadratic memory, intended for graphs of at most a few
    hundred tasks. *)

val antichain : Dag.t -> Dag.task list
(** A maximum antichain witnessing {!exact}, obtained from the König
    vertex-cover construction on the same matching. *)
