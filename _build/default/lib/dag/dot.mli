(** Graphviz DOT export of task graphs. *)

val to_string : ?highlight:Dag.task list -> Dag.t -> string
(** DOT source for the graph; nodes carry their label and execution weight,
    edges their data volume.  Tasks in [highlight] are drawn filled (e.g. a
    critical path). *)

val to_file : ?highlight:Dag.task list -> string -> Dag.t -> unit
(** Write {!to_string} to the given path. *)
