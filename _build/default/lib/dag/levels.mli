(** Top and bottom levels (§2 of the paper).

    The top level [tl t] is the length of the longest path from an entry task
    to [t], excluding the weight of [t] itself; entry tasks have top level 0.
    The bottom level [bl t] is the length of the longest path from [t] to an
    exit task, including the weight of [t]; an exit task's bottom level is
    its own weight.  Path lengths sum node weights and edge weights, both
    supplied as functions so callers can plug in average execution and
    communication times on a heterogeneous platform (as in [Topcuoglu et
    al. 2002]). *)

type weights = {
  node : Dag.task -> float;  (** weight of a task on the path *)
  edge : Dag.task -> Dag.task -> float -> float;
      (** weight of an edge given source, destination and data volume *)
}

val unit_weights : weights
(** Node weight = 1, edge weight = data volume; useful for structural
    (hop-counting) levels. *)

val exec_weights : Dag.t -> weights
(** Node weight = execution weight of the task, edge weight = data volume:
    the natural weights on a homogeneous unit-speed platform. *)

val top : Dag.t -> weights -> float array
val bottom : Dag.t -> weights -> float array

val priority : Dag.t -> weights -> float array
(** [tl + bl], the task priority used by LTF and R-LTF.  Tasks on a critical
    path all share the maximal value. *)

val critical_path_length : Dag.t -> weights -> float
(** Maximum of [bottom] over entry tasks, i.e. the weighted longest path of
    the graph (0 for the empty graph). *)
