(* Priority-by-task-id Kahn traversal: deterministic and stable, which the
   test suite relies on. *)
let order_with ~next g =
  let n = Dag.size g in
  let indeg = Array.make n 0 in
  Dag.iter_tasks g (fun t -> indeg.(t) <- List.length (next `In g t));
  let module Iset = Set.Make (Int) in
  let ready = ref Iset.empty in
  Dag.iter_tasks g (fun t -> if indeg.(t) = 0 then ready := Iset.add t !ready);
  let out = Array.make n 0 in
  let rec loop i =
    if i < n then begin
      let t = Iset.min_elt !ready in
      ready := Iset.remove t !ready;
      out.(i) <- t;
      List.iter
        (fun (w, _) ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then ready := Iset.add w !ready)
        (next `Out g t);
      loop (i + 1)
    end
  in
  loop 0;
  out

let forward dir g t =
  match dir with `In -> Dag.preds g t | `Out -> Dag.succs g t

let backward dir g t =
  match dir with `In -> Dag.succs g t | `Out -> Dag.preds g t

let order g = order_with ~next:forward g
let reverse_order g = order_with ~next:backward g

let depth g =
  let d = Array.make (Dag.size g) 0 in
  Array.iter
    (fun t ->
      List.iter (fun (p, _) -> d.(t) <- max d.(t) (d.(p) + 1)) (Dag.preds g t))
    (order g);
  d

let height g =
  let h = Array.make (Dag.size g) 0 in
  Array.iter
    (fun t ->
      List.iter (fun (s, _) -> h.(t) <- max h.(t) (h.(s) + 1)) (Dag.succs g t))
    (reverse_order g);
  h

let layers g =
  if Dag.size g = 0 then [||]
  else begin
    let d = depth g in
    let dmax = Array.fold_left max 0 d in
    let slots = Array.make (dmax + 1) [] in
    for t = Dag.size g - 1 downto 0 do
      slots.(d.(t)) <- t :: slots.(d.(t))
    done;
    slots
  end

let reachable g t =
  let seen = Array.make (Dag.size g) false in
  let rec visit u =
    List.iter
      (fun (w, _) ->
        if not seen.(w) then begin
          seen.(w) <- true;
          visit w
        end)
      (Dag.succs g u)
  in
  visit t;
  seen

let transitive_closure g =
  let n = Dag.size g in
  let closure = Array.make_matrix n n false in
  (* Process in reverse topological order so each successor's row is final
     before it is merged into its predecessors. *)
  Array.iter
    (fun u ->
      List.iter
        (fun (w, _) ->
          closure.(u).(w) <- true;
          for x = 0 to n - 1 do
            if closure.(w).(x) then closure.(u).(x) <- true
          done)
        (Dag.succs g u))
    (reverse_order g);
  closure

let independent g a b =
  if a = b then false
  else begin
    let from_a = reachable g a in
    if from_a.(b) then false else not (reachable g b).(a)
  end
