type weights = {
  node : Dag.task -> float;
  edge : Dag.task -> Dag.task -> float -> float;
}

let unit_weights : weights =
  { node = (fun _ -> 1.0); edge = (fun _ _ v -> v) }

let exec_weights g : weights =
  { node = Dag.exec g; edge = (fun _ _ v -> v) }

let top g w =
  let tl = Array.make (Dag.size g) 0.0 in
  Array.iter
    (fun t ->
      List.iter
        (fun (p, vol) ->
          let via = tl.(p) +. w.node p +. w.edge p t vol in
          if via > tl.(t) then tl.(t) <- via)
        (Dag.preds g t))
    (Topo.order g);
  tl

let bottom g w =
  let bl = Array.make (Dag.size g) 0.0 in
  Array.iter
    (fun t ->
      bl.(t) <- w.node t;
      List.iter
        (fun (s, vol) ->
          let via = w.node t +. w.edge t s vol +. bl.(s) in
          if via > bl.(t) then bl.(t) <- via)
        (Dag.succs g t))
    (Topo.reverse_order g);
  bl

let priority g w =
  let tl = top g w and bl = bottom g w in
  Array.init (Dag.size g) (fun t -> tl.(t) +. bl.(t))

let critical_path_length g w =
  let bl = bottom g w in
  List.fold_left (fun acc t -> Float.max acc bl.(t)) 0.0 (Dag.entries g)
