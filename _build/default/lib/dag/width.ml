let layer_lower_bound g =
  Array.fold_left
    (fun acc layer -> max acc (List.length layer))
    0 (Topo.layers g)

(* Kuhn's augmenting-path maximum matching on the bipartite split graph of
   the transitive closure: left copy of u connects to right copy of v iff
   u precedes v.  Dilworth: max antichain = v - |matching|. *)
let matching g =
  let n = Dag.size g in
  let closure = Topo.transitive_closure g in
  let match_l = Array.make n (-1) and match_r = Array.make n (-1) in
  let visited = Array.make n false in
  let rec try_augment u =
    let rec scan v =
      if v >= n then false
      else if closure.(u).(v) && not visited.(v) then begin
        visited.(v) <- true;
        if match_r.(v) = -1 || try_augment match_r.(v) then begin
          match_l.(u) <- v;
          match_r.(v) <- u;
          true
        end
        else scan (v + 1)
      end
      else scan (v + 1)
    in
    scan 0
  in
  let size = ref 0 in
  for u = 0 to n - 1 do
    Array.fill visited 0 n false;
    if try_augment u then incr size
  done;
  (closure, match_l, match_r, !size)

let exact g =
  let _, _, _, m = matching g in
  Dag.size g - m

(* Koenig's construction: run an alternating BFS from the unmatched left
   vertices; the antichain is { u | left u reached && right u not reached }. *)
let antichain g =
  let n = Dag.size g in
  let closure, match_l, match_r, _ = matching g in
  let z_left = Array.make n false and z_right = Array.make n false in
  let queue = Queue.create () in
  for u = 0 to n - 1 do
    if match_l.(u) = -1 then begin
      z_left.(u) <- true;
      Queue.add u queue
    end
  done;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    for v = 0 to n - 1 do
      if closure.(u).(v) && not z_right.(v) then begin
        z_right.(v) <- true;
        let u' = match_r.(v) in
        if u' <> -1 && not z_left.(u') then begin
          z_left.(u') <- true;
          Queue.add u' queue
        end
      end
    done
  done;
  let rec collect u acc =
    if u < 0 then acc
    else
      collect (u - 1) (if z_left.(u) && not z_right.(u) then u :: acc else acc)
  in
  collect (n - 1) []
