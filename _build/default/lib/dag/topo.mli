(** Topological orderings, depth layers and reachability. *)

val order : Dag.t -> Dag.task array
(** A topological order of the tasks (Kahn's algorithm, lowest task id
    first among simultaneously ready tasks, so the order is deterministic). *)

val reverse_order : Dag.t -> Dag.task array
(** A reverse topological order (every task appears after all of its
    successors). *)

val depth : Dag.t -> int array
(** [depth g] maps each task to the length (in edges) of the longest path
    from an entry task to it; entry tasks have depth [0]. *)

val height : Dag.t -> int array
(** Longest edge-count path from each task down to an exit task; exit tasks
    have height [0]. *)

val layers : Dag.t -> Dag.task list array
(** Tasks grouped by {!depth}; [layers g] has [1 + max depth] slots (or zero
    slots for the empty graph), each sorted increasingly. *)

val reachable : Dag.t -> Dag.task -> bool array
(** [reachable g t] marks every task reachable from [t] by a non-empty
    directed path ([t] itself is marked only if it lies on a cycle, which
    cannot happen in a DAG). *)

val transitive_closure : Dag.t -> bool array array
(** [c = transitive_closure g] has [c.(u).(v) = true] iff there is a
    non-empty path from [u] to [v].  Quadratic in memory: intended for the
    width computation and tests on small/medium graphs. *)

val independent : Dag.t -> Dag.task -> Dag.task -> bool
(** No directed path connects the two (distinct) tasks in either direction. *)
