(** Series-parallel DAG recognition.

    §4.2 notes that Rule 2 reduces the number of replica communications to
    [e(ε+1)] on any series-parallel graph; the property test suite relies on
    this recognizer to restrict generated inputs accordingly.

    A (two-terminal) series-parallel DAG is either a single edge, or the
    series or parallel composition of two series-parallel DAGs.  Recognition
    uses the classic reduction algorithm: repeatedly contract series vertices
    (in-degree = out-degree = 1) and merge parallel edges; the graph is SP
    iff it reduces to a single edge.  Multi-source/multi-sink graphs are
    first augmented with a virtual source and sink. *)

val is_series_parallel : Dag.t -> bool
(** Whether the (source/sink-augmented) graph is two-terminal
    series-parallel.  The empty graph and the one-task graph are SP. *)
