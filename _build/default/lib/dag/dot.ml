let to_string ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" (Dag.name g));
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=ellipse];\n";
  Dag.iter_tasks g (fun t ->
      let extra =
        if List.mem t highlight then ", style=filled, fillcolor=lightgrey"
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\nE=%g\"%s];\n" t (Dag.label g t)
           (Dag.exec g t) extra));
  Dag.iter_edges g (fun src dst vol ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%g\"];\n" src dst vol));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?highlight path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?highlight g))
