lib/dag/dot.mli: Dag
