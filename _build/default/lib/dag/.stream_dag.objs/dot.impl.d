lib/dag/dot.ml: Buffer Dag Fun List Printf
