lib/dag/paths.ml: Array Dag Levels List Topo
