lib/dag/sp.mli: Dag
