lib/dag/levels.ml: Array Dag Float List Topo
