lib/dag/levels.mli: Dag
