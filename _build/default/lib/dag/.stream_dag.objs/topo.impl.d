lib/dag/topo.ml: Array Dag Int List Set
