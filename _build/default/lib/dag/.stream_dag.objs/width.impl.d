lib/dag/width.ml: Array Dag List Queue Topo
