lib/dag/dag.ml: Array Format Hashtbl List Printf Queue
