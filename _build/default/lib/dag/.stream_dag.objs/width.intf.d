lib/dag/width.mli: Dag
