lib/dag/sp.ml: Array Dag Hashtbl List
