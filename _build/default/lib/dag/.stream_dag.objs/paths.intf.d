lib/dag/paths.mli: Dag Levels
