(* Mutable multigraph used during the series/parallel reduction.  Vertices
   are ints; [n] and [n + 1] are the virtual source and sink. *)
type multigraph = {
  out_adj : (int, int) Hashtbl.t array;  (* vertex -> multiset of successors *)
  in_adj : (int, int) Hashtbl.t array;
}

let add_arc mg u v =
  let bump tbl key =
    let c = try Hashtbl.find tbl key with Not_found -> 0 in
    Hashtbl.replace tbl key (c + 1)
  in
  bump mg.out_adj.(u) v;
  bump mg.in_adj.(v) u

let remove_arc mg u v =
  let drop tbl key =
    match Hashtbl.find_opt tbl key with
    | None -> ()
    | Some 1 -> Hashtbl.remove tbl key
    | Some c -> Hashtbl.replace tbl key (c - 1)
  in
  drop mg.out_adj.(u) v;
  drop mg.in_adj.(v) u

let degree tbl = Hashtbl.fold (fun _ c acc -> acc + c) tbl 0

let sole_neighbor tbl =
  match Hashtbl.fold (fun v _ acc -> v :: acc) tbl [] with
  | [ v ] -> v
  | _ -> invalid_arg "Sp.sole_neighbor"

let is_series_parallel g =
  let n = Dag.size g in
  if n <= 1 then true
  else begin
    let source = n and sink = n + 1 in
    let mg =
      {
        out_adj = Array.init (n + 2) (fun _ -> Hashtbl.create 4);
        in_adj = Array.init (n + 2) (fun _ -> Hashtbl.create 4);
      }
    in
    Dag.iter_edges g (fun u v _ -> add_arc mg u v);
    List.iter (fun t -> add_arc mg source t) (Dag.entries g);
    List.iter (fun t -> add_arc mg t sink) (Dag.exits g);
    (* Parallel reduction: collapse every multi-edge out of [u] to a single
       edge.  Returns true if something changed. *)
    let parallel_reduce u =
      let changed = ref false in
      let extras =
        Hashtbl.fold
          (fun v c acc -> if c > 1 then (v, c - 1) :: acc else acc)
          mg.out_adj.(u) []
      in
      List.iter
        (fun (v, surplus) ->
          changed := true;
          for _ = 1 to surplus do
            remove_arc mg u v
          done)
        extras;
      !changed
    in
    (* Series reduction of an interior vertex with in-degree = out-degree = 1. *)
    let series_reduce v =
      if v <> source && v <> sink
         && degree mg.in_adj.(v) = 1
         && degree mg.out_adj.(v) = 1
      then begin
        let u = sole_neighbor mg.in_adj.(v) and w = sole_neighbor mg.out_adj.(v) in
        remove_arc mg u v;
        remove_arc mg v w;
        add_arc mg u w;
        true
      end
      else false
    in
    let rec fixpoint () =
      let changed = ref false in
      for v = 0 to n + 1 do
        if parallel_reduce v then changed := true
      done;
      for v = 0 to n - 1 do
        if series_reduce v then changed := true
      done;
      if !changed then fixpoint ()
    in
    fixpoint ();
    let interior_empty =
      let rec check v =
        v >= n
        || (Hashtbl.length mg.out_adj.(v) = 0
            && Hashtbl.length mg.in_adj.(v) = 0
            && check (v + 1))
      in
      check 0
    in
    interior_empty
    && degree mg.out_adj.(source) = 1
    && Hashtbl.mem mg.out_adj.(source) sink
  end
