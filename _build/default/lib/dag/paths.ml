let critical_path g w =
  if Dag.size g = 0 then []
  else begin
    let bl = Levels.bottom g w in
    let best_of candidates =
      List.fold_left
        (fun acc t ->
          match acc with
          | Some b when bl.(b) >= bl.(t) -> acc
          | _ -> Some t)
        None candidates
    in
    match best_of (Dag.entries g) with
    | None -> []
    | Some entry ->
        (* Follow, from the best entry, the successor realizing the
           recurrence bl t = node t + max (edge + bl succ). *)
        let rec walk t acc =
          let next =
            List.fold_left
              (fun acc' (s, vol) ->
                let len = w.Levels.edge t s vol +. bl.(s) in
                match acc' with
                | Some (_, best) when best >= len -> acc'
                | _ -> Some (s, len))
              None (Dag.succs g t)
          in
          match next with
          | None -> List.rev (t :: acc)
          | Some (s, _) -> walk s (t :: acc)
        in
        walk entry []
  end

let longest_path_through g w t =
  let tl = Levels.top g w and bl = Levels.bottom g w in
  tl.(t) +. bl.(t)

let saturating_add a b =
  if a > max_int - b then max_int else a + b

let count_paths g =
  let counts = Array.make (Dag.size g) 0 in
  Array.iter
    (fun t ->
      counts.(t) <-
        (match Dag.succs g t with
        | [] -> 1
        | succs ->
            List.fold_left
              (fun acc (s, _) -> saturating_add acc counts.(s))
              0 succs))
    (Topo.reverse_order g);
  List.fold_left
    (fun acc t -> saturating_add acc counts.(t))
    0 (Dag.entries g)
  |> fun total -> if Dag.size g = 0 then 0 else total

let all_paths ?(limit = 10_000) g =
  let found = ref [] and n_found = ref 0 in
  let rec extend t prefix =
    if !n_found < limit then
      match Dag.succs g t with
      | [] ->
          found := List.rev (t :: prefix) :: !found;
          incr n_found
      | succs -> List.iter (fun (s, _) -> extend s (t :: prefix)) succs
  in
  List.iter (fun entry -> extend entry []) (Dag.entries g);
  List.rev !found
