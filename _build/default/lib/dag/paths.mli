(** Path queries on weighted DAGs. *)

val critical_path : Dag.t -> Levels.weights -> Dag.task list
(** A longest weighted path from an entry to an exit task, as the ordered
    list of tasks along it ([[]] for the empty graph). *)

val longest_path_through : Dag.t -> Levels.weights -> Dag.task -> float
(** Length of the longest entry-to-exit path passing through the given task
    (= top level + bottom level, the LTF priority). *)

val count_paths : Dag.t -> int
(** Total number of entry-to-exit paths.  Saturates at [max_int] (path
    counts grow exponentially on dense graphs). *)

val all_paths : ?limit:int -> Dag.t -> Dag.task list list
(** Enumerate entry-to-exit paths (at most [limit], default 10_000), in a
    deterministic order.  Used by the EXPERT baseline which processes paths
    by decreasing execution time. *)
