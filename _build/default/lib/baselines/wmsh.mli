(** WMSH [Vydyanathan, Catalyurek, Kurc, Saddayappan, Saltz 2007] —
    reference [10].

    Three phases toward optimizing latency under a throughput constraint:
    (1) clustering assuming unlimited processors until every cluster's
    load fits one period (satisfying the throughput requirement); (2) a
    processor-reduction phase merging the lightest clusters while they
    still fit; (3) latency refinement that walks the critical path and
    merges consecutive critical tasks' clusters to remove the heaviest
    critical communications.  (The original also duplicates tasks to raise
    throughput; duplication is meaningless under our replication scheme
    and is omitted.) *)

val run : Dag.t -> Platform.t -> throughput:float -> Assignment.t
val mapping : Dag.t -> Platform.t -> throughput:float -> Mapping.t
