type result = {
  assignment : Assignment.t;
  earliest : float array;
  latest : float array;
  n_stages : int;
}

let run dag plat ~throughput =
  let cap = Hary.load_cap plat ~throughput in
  let weights =
    {
      Levels.node = (fun t -> Dag.exec dag t *. Platform.mean_inverse_speed plat);
      Levels.edge = (fun _ _ vol -> vol *. Platform.mean_unit_delay plat);
    }
  in
  (* Earliest time = top level; latest = critical path length - bottom
     level (so latest - earliest is the task's slack). *)
  let earliest = Levels.top dag weights in
  let bottom = Levels.bottom dag weights in
  let cp = Levels.critical_path_length dag weights in
  let latest = Array.mapi (fun t _ -> cp -. bottom.(t)) earliest in
  let clusters = Clustering.create dag in
  (* Pull the critical path into one cluster first (the paper's
     duplication step targets exactly these tasks). *)
  let critical = Paths.critical_path dag weights in
  (match critical with
  | [] -> ()
  | first :: rest ->
      ignore
        (List.fold_left
           (fun prev task ->
             ignore (Clustering.merge_if clusters ~max_load:cap prev task);
             task)
           first rest));
  (* Then zero edges by decreasing volume when the merged cluster keeps a
     small earliest-time span (tasks far apart in time gain nothing from
     sharing a processor) and fits the load cap. *)
  let span = 1.0 /. throughput in
  let edges =
    Dag.fold_edges dag ~init:[] ~f:(fun acc src dst vol -> (vol, src, dst) :: acc)
    |> List.sort (fun (va, sa, da) (vb, sb, db) ->
           match compare vb va with 0 -> compare (sa, da) (sb, db) | c -> c)
  in
  List.iter
    (fun (_, src, dst) ->
      if Float.abs (earliest.(dst) -. earliest.(src)) <= span then
        ignore (Clustering.merge_if clusters ~max_load:cap src dst))
    edges;
  let assignment = Clustering.to_assignment clusters plat in
  (* Third traversal: count stages as processor changes along the earliest
     topological order. *)
  let stage = Array.make (Dag.size dag) 1 in
  let n_stages = ref 1 in
  Array.iter
    (fun task ->
      List.iter
        (fun (pred, _) ->
          let eta = if assignment.(pred) = assignment.(task) then 0 else 1 in
          if stage.(pred) + eta > stage.(task) then
            stage.(task) <- stage.(pred) + eta)
        (Dag.preds dag task);
      if stage.(task) > !n_stages then n_stages := stage.(task))
    (Topo.order dag);
  { assignment; earliest; latest; n_stages = !n_stages }

let mapping dag plat ~throughput =
  Assignment.to_mapping ~throughput dag plat (run dag plat ~throughput).assignment
