(** Cluster bookkeeping shared by the pre-clustering baselines
    (Hary–Özgüner, STDP, WMSH).

    A clustering is a partition of the tasks; clusters are later mapped
    one-to-one (or many-to-one, after merging) onto processors.  The
    structure is a union-find with per-cluster execution loads. *)

type t

val create : Dag.t -> t
(** One singleton cluster per task. *)

val find : t -> Dag.task -> int
(** Canonical cluster id of the task. *)

val same : t -> Dag.task -> Dag.task -> bool

val load : t -> int -> float
(** Total execution weight of the cluster (raw work units). *)

val merge : t -> Dag.task -> Dag.task -> unit
(** Union the two tasks' clusters. *)

val merge_if : t -> max_load:float -> Dag.task -> Dag.task -> bool
(** Merge unless the combined execution weight would exceed [max_load];
    returns whether the merge happened (also true when already together). *)

val n_clusters : t -> int

val members : t -> Dag.task list array
(** Tasks of each canonical cluster, indexed by a dense renumbering;
    clusters in increasing order of their smallest task. *)

val cut_volume : t -> float
(** Total volume of edges whose endpoints lie in different clusters. *)

val to_assignment :
  t -> Platform.t -> Assignment.t
(** Map clusters to processors: clusters in decreasing load order, each
    placed on the processor with the smallest accumulated time load
    (largest-first bin packing on heterogeneous speeds), merging beyond
    [m] clusters implicitly. *)
