(** Shared plumbing for the related-work baselines (§3).

    The §3 heuristics target homogeneous platforms without replication;
    they all reduce to a task → processor assignment.  This module turns
    such an assignment into a full (ε = 0) {!Mapping.t} through the
    support-discipline source derivation, and provides the common
    quality metrics used to compare them against LTF/R-LTF. *)

type t = Platform.proc array
(** [a.(task)] is the processor of the task. *)

val to_mapping :
  ?throughput:float -> Dag.t -> Platform.t -> t -> Mapping.t
(** Build the single-copy mapping for the assignment (sources derived
    local-first). *)

val loads : Dag.t -> Platform.t -> t -> float array
(** Per-processor computing load [Σ_u] of the assignment. *)

val max_load : Dag.t -> Platform.t -> t -> float

val comm_volume : Dag.t -> t -> float
(** Total data volume crossing processors. *)

val validate : Dag.t -> Platform.t -> t -> unit
(** @raise Invalid_argument if a processor index is out of range. *)
