(** EXPERT [Guirado, Ripoll, Roig, Luque 2005] — reference [3].

    Optimizes latency under a throughput requirement by processing the
    application's paths in decreasing execution-time order: each path is
    cut into maximal sub-paths whose combined execution fits within one
    period; the tasks of a sub-path form a stage-local cluster.  Clusters
    are then placed on processors balancing computational load.  Path
    enumeration is capped; tasks not covered by any enumerated path join
    the cluster of their heaviest-volume neighbour. *)

val run :
  ?max_paths:int -> Dag.t -> Platform.t -> throughput:float -> Assignment.t

val mapping :
  ?max_paths:int -> Dag.t -> Platform.t -> throughput:float -> Mapping.t
