(** Hoang–Rabaey [1993] — reference [5].

    Maximum-throughput scheduling of DSP programs on a fixed number of
    processors: binary search on the period, each probe calling a mapping
    routine that performs a top-down traversal partitioning the graph into
    stages and greedily packing tasks onto processors within the candidate
    period; the probe succeeds when at most [m] processors are needed. *)

type result = {
  period : float;            (** smallest feasible period found *)
  assignment : Assignment.t; (** assignment realizing it *)
  probes : int;              (** number of binary-search evaluations *)
}

val run : ?iterations:int -> Dag.t -> Platform.t -> result
(** Binary search (default 40 iterations) between the trivially feasible
    period (whole graph on the fastest processor) and the trivial lower
    bound (total work spread over every processor at full speed). *)

val mapping : ?iterations:int -> Dag.t -> Platform.t -> Mapping.t
(** Mapping of the best assignment, checked against the found period. *)
