(** Hary–Özgüner pre-clustering [1999] — reference [4].

    Aims at a prescribed throughput by minimizing inter-processor
    communication: edges are sorted by decreasing data volume and dealt
    with greedily, merging the source's and sink's clusters whenever the
    combined load still fits within the period; remaining singleton tasks
    are assigned to clusters first-fit; two refinement passes move tasks
    toward the cluster holding most of their neighbourhood volume when the
    load allows. *)

val load_cap : Platform.t -> throughput:float -> float
(** Work units a mean-speed processor can absorb per period; the cluster
    load cap used by all the throughput-driven clustering baselines. *)

val run : Dag.t -> Platform.t -> throughput:float -> Assignment.t
val mapping : Dag.t -> Platform.t -> throughput:float -> Mapping.t
