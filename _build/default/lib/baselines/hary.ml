(* The load cap is expressed in work units: a cluster of weight W runs on a
   processor of speed s in W/s time, so a period Δ allows W ≤ Δ · s.  The
   pre-clustering phase is processor-agnostic; the mean speed calibrates
   the cap, and the final placement puts heavy clusters on fast
   processors. *)
let load_cap plat ~throughput =
  let mean_speed =
    List.fold_left (fun acc u -> acc +. Platform.speed plat u) 0.0
      (Platform.procs plat)
    /. float_of_int (Platform.size plat)
  in
  mean_speed /. throughput

let refine dag clusters ~max_load =
  (* Move every task to the cluster receiving most of its edge volume, if
     the load allows.  Union-find cannot split, so simulate moves with an
     explicit cluster-id array from here on. *)
  let groups = Clustering.members clusters in
  let cluster_of = Array.make (Dag.size dag) 0 in
  Array.iteri
    (fun c tasks -> List.iter (fun task -> cluster_of.(task) <- c) tasks)
    groups;
  let loads =
    Array.map
      (fun tasks ->
        List.fold_left (fun acc task -> acc +. Dag.exec dag task) 0.0 tasks)
      groups
  in
  let improved = ref true and rounds = ref 0 in
  while !improved && !rounds < 2 do
    improved := false;
    incr rounds;
    Dag.iter_tasks dag (fun task ->
        let here = cluster_of.(task) in
        (* Volume of task's edges toward each neighbouring cluster. *)
        let volume_to = Hashtbl.create 4 in
        let add c vol =
          Hashtbl.replace volume_to c
            (vol +. try Hashtbl.find volume_to c with Not_found -> 0.0)
        in
        List.iter (fun (p, vol) -> add cluster_of.(p) vol) (Dag.preds dag task);
        List.iter (fun (s, vol) -> add cluster_of.(s) vol) (Dag.succs dag task);
        let here_vol = try Hashtbl.find volume_to here with Not_found -> 0.0 in
        let best = ref None in
        Hashtbl.iter
          (fun c vol ->
            if c <> here && vol > here_vol
               && loads.(c) +. Dag.exec dag task <= max_load
            then
              match !best with
              | Some (bv, _) when bv >= vol -> ()
              | _ -> best := Some (vol, c))
          volume_to;
        match !best with
        | Some (_, c) ->
            loads.(here) <- loads.(here) -. Dag.exec dag task;
            loads.(c) <- loads.(c) +. Dag.exec dag task;
            cluster_of.(task) <- c;
            improved := true
        | None -> ())
  done;
  cluster_of

let run dag plat ~throughput =
  let max_load = load_cap plat ~throughput in
  let clusters = Clustering.create dag in
  (* Greedy edge zeroing by decreasing volume. *)
  let edges =
    Dag.fold_edges dag ~init:[] ~f:(fun acc src dst vol -> (vol, src, dst) :: acc)
    |> List.sort (fun (va, sa, da) (vb, sb, db) ->
           match compare vb va with 0 -> compare (sa, da) (sb, db) | c -> c)
  in
  List.iter
    (fun (_, src, dst) -> ignore (Clustering.merge_if clusters ~max_load src dst))
    edges;
  let cluster_of = refine dag clusters ~max_load in
  (* Rebuild a clustering consistent with the refinement and place it. *)
  let final = Clustering.create dag in
  let representative = Hashtbl.create 16 in
  Dag.iter_tasks dag (fun task ->
      match Hashtbl.find_opt representative cluster_of.(task) with
      | None -> Hashtbl.add representative cluster_of.(task) task
      | Some first -> Clustering.merge final first task);
  Clustering.to_assignment final plat

let mapping dag plat ~throughput =
  Assignment.to_mapping ~throughput dag plat (run dag plat ~throughput)
