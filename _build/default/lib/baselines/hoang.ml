type result = {
  period : float;
  assignment : Assignment.t;
  probes : int;
}

(* The mapping routine of the binary search: greedily pack the tasks (in
   topological order, so stages come out contiguous) onto processors,
   opening a new processor when the current one would exceed the candidate
   period.  Fast processors are opened first.  Returns the assignment if it
   fits within m processors. *)
let probe dag plat ~period =
  let by_speed =
    Platform.procs plat
    |> List.sort (fun a b ->
           match compare (Platform.speed plat b) (Platform.speed plat a) with
           | 0 -> compare a b
           | c -> c)
  in
  let n = Dag.size dag in
  let assignment = Array.make n 0 in
  let rec pack remaining current load = function
    | [] -> Some ()
    | task :: rest -> (
        let time proc = Platform.exec_time plat proc (Dag.exec dag task) in
        if load +. time current <= period then begin
          assignment.(task) <- current;
          pack remaining current (load +. time current) rest
        end
        else
          match remaining with
          | [] -> None
          | next :: remaining' ->
              if time next > period then None
              else begin
                assignment.(task) <- next;
                pack remaining' next (time next) rest
              end)
  in
  match by_speed with
  | [] -> None
  | first :: rest -> (
      let tasks = Array.to_list (Topo.order dag) in
      match pack rest first 0.0 tasks with
      | Some () -> Some (Array.copy assignment)
      | None -> None)

let run ?(iterations = 40) dag plat =
  let total_speed =
    List.fold_left (fun acc u -> acc +. Platform.speed plat u) 0.0
      (Platform.procs plat)
  in
  let hi = Platform.exec_time plat (Platform.fastest_proc plat) (Dag.total_exec dag) in
  let lo = Dag.total_exec dag /. total_speed in
  let probes = ref 0 in
  let try_period p =
    incr probes;
    probe dag plat ~period:p
  in
  let best = ref (hi, match try_period hi with Some a -> a | None -> Array.make (Dag.size dag) (Platform.fastest_proc plat)) in
  let rec search lo hi k =
    if k > 0 && hi -. lo > 1e-9 *. hi then begin
      let mid = (lo +. hi) /. 2.0 in
      match try_period mid with
      | Some a ->
          best := (mid, a);
          search lo mid (k - 1)
      | None -> search mid hi (k - 1)
    end
  in
  search lo hi iterations;
  let period, assignment = !best in
  { period; assignment; probes = !probes }

let mapping ?iterations dag plat =
  let r = run ?iterations dag plat in
  Assignment.to_mapping ~throughput:(1.0 /. r.period) dag plat r.assignment
