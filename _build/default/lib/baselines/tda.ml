type result = {
  assignment : Assignment.t;
  stage_of : int array;
  n_stages : int;
  procs_used : int;
}

let run dag plat ~throughput =
  let delta = 1.0 /. throughput in
  let etf = Etf.run dag plat in
  let assignment = Array.copy etf.Etf.assignment in
  (* Top-down stage partition: traverse in topological order, opening a new
     stage whenever adding the task would push its processor's per-stage
     execution beyond the period. *)
  let n = Dag.size dag in
  let stage_of = Array.make n 0 in
  let stage_load = Hashtbl.create 16 in (* (stage, proc) -> load *)
  let load stage proc =
    try Hashtbl.find stage_load (stage, proc) with Not_found -> 0.0
  in
  let n_stages = ref 1 in
  Array.iter
    (fun task ->
      let lower =
        List.fold_left
          (fun acc (pred, _) -> max acc stage_of.(pred))
          0 (Dag.preds dag task)
      in
      let proc = assignment.(task) in
      let time = Platform.exec_time plat proc (Dag.exec dag task) in
      let rec place stage =
        if load stage proc +. time <= delta || time > delta then stage
        else place (stage + 1)
      in
      let stage = place lower in
      stage_of.(task) <- stage;
      Hashtbl.replace stage_load (stage, proc) (load stage proc +. time);
      if stage + 1 > !n_stages then n_stages := stage + 1)
    (Topo.order dag);
  (* Refinement: move the tasks of under-utilized processors onto the
     least-loaded other processor while total loads stay within the
     period. *)
  let proc_load = Assignment.loads dag plat assignment in
  let used p = proc_load.(p) > 0.0 in
  let try_evacuate p =
    if used p && proc_load.(p) <= 0.2 *. delta then begin
      let target = ref None in
      Array.iteri
        (fun q lq ->
          if q <> p && used q && lq +. proc_load.(p) <= delta then
            match !target with
            | Some (lt, _) when lt <= lq -> ()
            | _ -> target := Some (lq, q))
        proc_load;
      match !target with
      | Some (_, q) ->
          Array.iteri
            (fun task proc -> if proc = p then assignment.(task) <- q)
            (Array.copy assignment);
          proc_load.(q) <- proc_load.(q) +. proc_load.(p);
          proc_load.(p) <- 0.0
      | None -> ()
    end
  in
  List.iter try_evacuate (Platform.procs plat);
  let procs_used =
    Array.fold_left (fun acc l -> if l > 0.0 then acc + 1 else acc) 0 proc_load
  in
  { assignment; stage_of; n_stages = !n_stages; procs_used }

let mapping dag plat ~throughput =
  Assignment.to_mapping ~throughput dag plat (run dag plat ~throughput).assignment
