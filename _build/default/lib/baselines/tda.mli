(** TDA — Task and Data Assignment [Yang, Kasturi, Sivasubramaniam 2003],
    reference [11].

    Targets a desired throughput with few processors: ETF assigns tasks to
    processors, a top-down traversal partitions the tasks into stages (a
    stage is a maximal set of consecutive tasks whose combined execution
    per processor fits the period), and a refinement step merges
    under-utilized processors while the period allows. *)

type result = {
  assignment : Assignment.t;
  stage_of : int array;       (** top-down stage index per task, from 0 *)
  n_stages : int;
  procs_used : int;           (** distinct processors after refinement *)
}

val run : Dag.t -> Platform.t -> throughput:float -> result
val mapping : Dag.t -> Platform.t -> throughput:float -> Mapping.t
