type t = {
  dag : Dag.t;
  parent : int array;
  cluster_load : float array; (* valid at canonical representatives *)
}

let create dag =
  {
    dag;
    parent = Array.init (Dag.size dag) Fun.id;
    cluster_load = Array.init (Dag.size dag) (Dag.exec dag);
  }

let rec find t x =
  if t.parent.(x) = x then x
  else begin
    let root = find t t.parent.(x) in
    t.parent.(x) <- root;
    root
  end

let same t a b = find t a = find t b
let load t c = t.cluster_load.(find t c)

let merge t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let keep, drop = if ra < rb then (ra, rb) else (rb, ra) in
    t.parent.(drop) <- keep;
    t.cluster_load.(keep) <- t.cluster_load.(keep) +. t.cluster_load.(drop)
  end

let merge_if t ~max_load a b =
  let ra = find t a and rb = find t b in
  if ra = rb then true
  else if t.cluster_load.(ra) +. t.cluster_load.(rb) > max_load then false
  else begin
    merge t a b;
    true
  end

let canonical_ids t =
  let seen = Hashtbl.create 16 in
  let ids = ref [] in
  Dag.iter_tasks t.dag (fun task ->
      let c = find t task in
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.add seen c ();
        ids := c :: !ids
      end);
  List.rev !ids

let n_clusters t = List.length (canonical_ids t)

let members t =
  let ids = canonical_ids t in
  let index = Hashtbl.create 16 in
  List.iteri (fun i c -> Hashtbl.add index c i) ids;
  let slots = Array.make (List.length ids) [] in
  for task = Dag.size t.dag - 1 downto 0 do
    let i = Hashtbl.find index (find t task) in
    slots.(i) <- task :: slots.(i)
  done;
  slots

let cut_volume t =
  Dag.fold_edges t.dag ~init:0.0 ~f:(fun acc src dst vol ->
      if same t src dst then acc else acc +. vol)

let to_assignment t plat =
  let groups = members t in
  let group_load =
    Array.map
      (fun tasks ->
        List.fold_left (fun acc task -> acc +. Dag.exec t.dag task) 0.0 tasks)
      groups
  in
  let order =
    List.init (Array.length groups) Fun.id
    |> List.sort (fun a b ->
           match compare group_load.(b) group_load.(a) with
           | 0 -> compare a b
           | c -> c)
  in
  let proc_time = Array.make (Platform.size plat) 0.0 in
  let assignment = Array.make (Dag.size t.dag) 0 in
  List.iter
    (fun g ->
      (* Place on the processor finishing this cluster soonest. *)
      let best = ref 0 and best_time = ref infinity in
      List.iter
        (fun proc ->
          let time = proc_time.(proc) +. (group_load.(g) /. Platform.speed plat proc) in
          if time < !best_time then begin
            best := proc;
            best_time := time
          end)
        (Platform.procs plat);
      proc_time.(!best) <- !best_time;
      List.iter (fun task -> assignment.(task) <- !best) groups.(g))
    order;
  assignment
