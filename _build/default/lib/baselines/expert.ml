let path_exec dag path =
  List.fold_left (fun acc task -> acc +. Dag.exec dag task) 0.0 path

let run ?(max_paths = 2000) dag plat ~throughput =
  let cap = Hary.load_cap plat ~throughput in
  let clusters = Clustering.create dag in
  let assigned = Array.make (Dag.size dag) false in
  let paths =
    Paths.all_paths ~limit:max_paths dag
    |> List.map (fun p -> (path_exec dag p, p))
    |> List.sort (fun (a, pa) (b, pb) ->
           match compare b a with 0 -> compare pa pb | c -> c)
  in
  (* Walk each path, growing a sub-path cluster while unassigned tasks keep
     fitting in one period. *)
  List.iter
    (fun (_, path) ->
      let anchor = ref None in
      List.iter
        (fun task ->
          if assigned.(task) then anchor := None
          else begin
            (match !anchor with
            | Some prev
              when Clustering.load clusters prev +. Dag.exec dag task <= cap ->
                Clustering.merge clusters prev task
            | _ -> ());
            assigned.(task) <- true;
            anchor := Some task
          end)
        path)
    paths;
  (* Tasks on no enumerated path: join the heaviest-volume neighbour when
     the load allows. *)
  Dag.iter_tasks dag (fun task ->
      if not assigned.(task) then begin
        let neighbours =
          List.map (fun (p, vol) -> (vol, p)) (Dag.preds dag task)
          @ List.map (fun (s, vol) -> (vol, s)) (Dag.succs dag task)
          |> List.sort (fun (a, pa) (b, pb) ->
                 match compare b a with 0 -> compare pa pb | c -> c)
        in
        let rec attach = function
          | [] -> ()
          | (_, other) :: rest ->
              if not (Clustering.merge_if clusters ~max_load:cap task other)
              then attach rest
        in
        attach neighbours;
        assigned.(task) <- true
      end);
  Clustering.to_assignment clusters plat

let mapping ?max_paths dag plat ~throughput =
  Assignment.to_mapping ~throughput dag plat (run ?max_paths dag plat ~throughput)
