let run dag plat ~throughput =
  let cap = Hary.load_cap plat ~throughput in
  let weights =
    {
      Levels.node = (fun t -> Dag.exec dag t *. Platform.mean_inverse_speed plat);
      Levels.edge = (fun _ _ vol -> vol *. Platform.mean_unit_delay plat);
    }
  in
  let clusters = Clustering.create dag in
  (* Phase 1: unlimited-processor clustering — zero the heaviest edges
     while the throughput cap holds. *)
  let edges =
    Dag.fold_edges dag ~init:[] ~f:(fun acc src dst vol -> (vol, src, dst) :: acc)
    |> List.sort (fun (va, sa, da) (vb, sb, db) ->
           match compare vb va with 0 -> compare (sa, da) (sb, db) | c -> c)
  in
  List.iter
    (fun (_, src, dst) -> ignore (Clustering.merge_if clusters ~max_load:cap src dst))
    edges;
  (* Phase 2: processor reduction — while more clusters than processors,
     merge the two lightest clusters that still fit together. *)
  let m = Platform.size plat in
  let continue_reduction = ref true in
  while Clustering.n_clusters clusters > m && !continue_reduction do
    let groups = Clustering.members clusters in
    let by_load =
      Array.to_list groups
      |> List.filter (fun tasks -> tasks <> [])
      |> List.map (fun tasks ->
             ( List.fold_left (fun acc t -> acc +. Dag.exec dag t) 0.0 tasks,
               List.hd tasks ))
      |> List.sort compare
    in
    match by_load with
    | (la, a) :: (lb, b) :: _ when la +. lb <= cap -> Clustering.merge clusters a b
    | (_, a) :: (_, b) :: _ ->
        (* nothing fits: merge the two lightest anyway so placement can
           proceed (the throughput requirement becomes best-effort) *)
        Clustering.merge clusters a b;
        continue_reduction := Clustering.n_clusters clusters > m
    | _ -> continue_reduction := false
  done;
  (* Phase 3: latency refinement along the critical path. *)
  let critical = Paths.critical_path dag weights in
  let rec walk = function
    | a :: (b :: _ as rest) ->
        ignore (Clustering.merge_if clusters ~max_load:cap a b);
        walk rest
    | _ -> ()
  in
  walk critical;
  Clustering.to_assignment clusters plat

let mapping dag plat ~throughput =
  Assignment.to_mapping ~throughput dag plat (run dag plat ~throughput)
