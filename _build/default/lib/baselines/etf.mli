(** ETF — Earliest Task First [Hwang, Chow, Anger, Lee 1989], reference
    [6]; the assignment engine inside the TDA algorithm [11].

    At every step, among all (ready task, processor) pairs, schedule the
    pair with the earliest possible start time, breaking ties by the
    higher static task priority.  Communication arrival times follow the
    link model; processors execute one task at a time. *)

type schedule = {
  assignment : Assignment.t;
  start : float array;
  finish : float array;
  makespan : float;
}

val run : Dag.t -> Platform.t -> schedule

val mapping : ?throughput:float -> Dag.t -> Platform.t -> Mapping.t
