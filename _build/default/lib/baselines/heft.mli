(** HEFT-style list scheduling [Topcuoglu et al. 2002] — reference [9].

    The paper uses "classical list scheduling techniques [9]" for the
    task-parallel execution of the motivating example (Fig. 1(b)).  Tasks
    are ordered by decreasing upward rank (bottom level on averaged
    weights) and greedily placed on the processor minimizing the earliest
    finish time, with insertion-based slot search and link communication
    costs. *)

type schedule = {
  assignment : Assignment.t;
  start : float array;
  finish : float array;
  makespan : float;
}

val run : Dag.t -> Platform.t -> schedule

val mapping : ?throughput:float -> Dag.t -> Platform.t -> Mapping.t
(** The ε = 0 mapping of the HEFT assignment. *)
