type schedule = {
  assignment : Assignment.t;
  start : float array;
  finish : float array;
  makespan : float;
}

let averaged_weights dag plat =
  {
    Levels.node = (fun t -> Dag.exec dag t *. Platform.mean_inverse_speed plat);
    Levels.edge = (fun _ _ vol -> vol *. Platform.mean_unit_delay plat);
  }

(* Insertion-based earliest start on a processor's committed slots. *)
let earliest_slot slots ~ready ~duration =
  Timeline.earliest_fit slots ~ready ~duration

let run dag plat =
  let n = Dag.size dag in
  let rank = Levels.bottom dag (averaged_weights dag plat) in
  let order =
    List.init n Fun.id
    |> List.sort (fun a b ->
           match compare rank.(b) rank.(a) with 0 -> compare a b | c -> c)
  in
  (* Upward-rank order is always a valid topological order because the
     bottom level of a predecessor strictly exceeds its successors'. *)
  let assignment = Array.make n 0 in
  let start = Array.make n 0.0 and finish = Array.make n 0.0 in
  let slots = Array.make (Platform.size plat) Timeline.empty in
  List.iter
    (fun task ->
      let best = ref None in
      List.iter
        (fun proc ->
          let ready =
            List.fold_left
              (fun acc (pred, vol) ->
                let arrival =
                  finish.(pred)
                  +. Platform.comm_time plat assignment.(pred) proc vol
                in
                Float.max acc arrival)
              0.0 (Dag.preds dag task)
          in
          let duration = Platform.exec_time plat proc (Dag.exec dag task) in
          let est = earliest_slot slots.(proc) ~ready ~duration in
          let eft = est +. duration in
          match !best with
          | Some (best_eft, _, _) when best_eft <= eft -> ()
          | _ -> best := Some (eft, est, proc))
        (Platform.procs plat);
      match !best with
      | None -> assert false
      | Some (eft, est, proc) ->
          assignment.(task) <- proc;
          start.(task) <- est;
          finish.(task) <- eft;
          slots.(proc) <- Timeline.insert slots.(proc) ~start:est ~duration:(eft -. est))
    order;
  let makespan = Array.fold_left Float.max 0.0 finish in
  { assignment; start; finish; makespan }

let mapping ?throughput dag plat =
  Assignment.to_mapping ?throughput dag plat (run dag plat).assignment
