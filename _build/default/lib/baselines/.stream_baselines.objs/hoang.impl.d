lib/baselines/hoang.ml: Array Assignment Dag List Platform Topo
