lib/baselines/assignment.ml: Array Dag Float Platform Printf Source_derivation
