lib/baselines/assignment.mli: Dag Mapping Platform
