lib/baselines/wmsh.ml: Array Assignment Clustering Dag Hary Levels List Paths Platform
