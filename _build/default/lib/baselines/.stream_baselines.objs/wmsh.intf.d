lib/baselines/wmsh.mli: Assignment Dag Mapping Platform
