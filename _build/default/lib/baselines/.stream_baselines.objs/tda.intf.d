lib/baselines/tda.mli: Assignment Dag Mapping Platform
