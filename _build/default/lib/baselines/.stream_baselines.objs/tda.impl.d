lib/baselines/tda.ml: Array Assignment Dag Etf Hashtbl List Platform Topo
