lib/baselines/heft.ml: Array Assignment Dag Float Fun Levels List Platform Timeline
