lib/baselines/hoang.mli: Assignment Dag Mapping Platform
