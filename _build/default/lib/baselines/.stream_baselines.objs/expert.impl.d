lib/baselines/expert.ml: Array Assignment Clustering Dag Hary List Paths
