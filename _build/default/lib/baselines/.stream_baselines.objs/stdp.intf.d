lib/baselines/stdp.mli: Assignment Dag Mapping Platform
