lib/baselines/heft.mli: Assignment Dag Mapping Platform
