lib/baselines/hary.mli: Assignment Dag Mapping Platform
