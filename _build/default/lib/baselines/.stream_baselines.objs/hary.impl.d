lib/baselines/hary.ml: Array Assignment Clustering Dag Hashtbl List Platform
