lib/baselines/stdp.ml: Array Assignment Clustering Dag Float Hary Levels List Paths Platform Topo
