lib/baselines/clustering.ml: Array Dag Fun Hashtbl List Platform
