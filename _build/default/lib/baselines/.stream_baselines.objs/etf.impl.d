lib/baselines/etf.ml: Array Assignment Dag Float Fun Levels List Platform
