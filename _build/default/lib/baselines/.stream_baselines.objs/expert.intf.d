lib/baselines/expert.mli: Assignment Dag Mapping Platform
