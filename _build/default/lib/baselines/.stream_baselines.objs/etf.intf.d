lib/baselines/etf.mli: Assignment Dag Mapping Platform
