lib/baselines/clustering.mli: Assignment Dag Platform
