type t = Platform.proc array

let validate dag plat a =
  if Array.length a <> Dag.size dag then
    invalid_arg "Assignment.validate: wrong length";
  Array.iteri
    (fun task proc ->
      if proc < 0 || proc >= Platform.size plat then
        invalid_arg
          (Printf.sprintf "Assignment.validate: t%d on invalid processor %d"
             task proc))
    a

let to_mapping ?throughput dag plat a =
  validate dag plat a;
  Source_derivation.derive ?throughput ~dag ~platform:plat ~eps:0
    ~proc_of:(fun task _copy -> a.(task))
    ()

let loads dag plat a =
  let sigma = Array.make (Platform.size plat) 0.0 in
  Dag.iter_tasks dag (fun task ->
      sigma.(a.(task)) <-
        sigma.(a.(task)) +. Platform.exec_time plat a.(task) (Dag.exec dag task));
  sigma

let max_load dag plat a = Array.fold_left Float.max 0.0 (loads dag plat a)

let comm_volume dag a =
  Dag.fold_edges dag ~init:0.0 ~f:(fun acc src dst vol ->
      if a.(src) = a.(dst) then acc else acc +. vol)
