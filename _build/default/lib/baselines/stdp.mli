(** STDP [Ranaweera, Agrawal 2001] — reference [8].

    Scheduling of periodic time-critical applications for pipelined
    execution: a top-down and a bottom-up traversal compute earliest and
    latest execution times; clusters are then built to minimize
    communication overhead (edges zeroed in decreasing-volume order while
    the merged cluster's span of earliest times stays within one period
    and its load fits); if processors remain, critical tasks are
    duplicated to cut latency (represented here by pulling the critical
    path into its own cluster — task duplication proper does not exist in
    a replica-per-failure mapping); finally stages are derived by a third
    traversal. *)

type result = {
  assignment : Assignment.t;
  earliest : float array;
  latest : float array;
  n_stages : int;
}

val run : Dag.t -> Platform.t -> throughput:float -> result
val mapping : Dag.t -> Platform.t -> throughput:float -> Mapping.t
