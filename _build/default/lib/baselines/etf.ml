type schedule = {
  assignment : Assignment.t;
  start : float array;
  finish : float array;
  makespan : float;
}

let run dag plat =
  let n = Dag.size dag in
  let priority =
    Levels.bottom dag
      {
        Levels.node = (fun t -> Dag.exec dag t *. Platform.mean_inverse_speed plat);
        Levels.edge = (fun _ _ vol -> vol *. Platform.mean_unit_delay plat);
      }
  in
  let assignment = Array.make n 0 in
  let start = Array.make n 0.0 and finish = Array.make n 0.0 in
  let proc_free = Array.make (Platform.size plat) 0.0 in
  let pending = Array.init n (Dag.in_degree dag) in
  let ready = ref (List.filter (fun t -> pending.(t) = 0) (List.init n Fun.id)) in
  let scheduled = Array.make n false in
  for _ = 1 to n do
    (* Evaluate every (ready task, processor) pair. *)
    let best = ref None in
    List.iter
      (fun task ->
        List.iter
          (fun proc ->
            let arrival =
              List.fold_left
                (fun acc (pred, vol) ->
                  Float.max acc
                    (finish.(pred)
                    +. Platform.comm_time plat assignment.(pred) proc vol))
                0.0 (Dag.preds dag task)
            in
            let est = Float.max arrival proc_free.(proc) in
            let better =
              match !best with
              | None -> true
              | Some (b_est, b_pri, b_task, b_proc) ->
                  est < b_est
                  || (est = b_est
                      && (priority.(task) > b_pri
                         || (priority.(task) = b_pri
                            && (task, proc) < (b_task, b_proc))))
            in
            if better then best := Some (est, priority.(task), task, proc))
          (Platform.procs plat))
      !ready;
    match !best with
    | None -> assert false
    | Some (est, _, task, proc) ->
        let duration = Platform.exec_time plat proc (Dag.exec dag task) in
        assignment.(task) <- proc;
        start.(task) <- est;
        finish.(task) <- est +. duration;
        proc_free.(proc) <- est +. duration;
        scheduled.(task) <- true;
        ready := List.filter (fun t -> t <> task) !ready;
        List.iter
          (fun (succ, _) ->
            pending.(succ) <- pending.(succ) - 1;
            if pending.(succ) = 0 then ready := succ :: !ready)
          (Dag.succs dag task)
  done;
  { assignment; start; finish; makespan = Array.fold_left Float.max 0.0 finish }

let mapping ?throughput dag plat =
  Assignment.to_mapping ?throughput dag plat (run dag plat).assignment
