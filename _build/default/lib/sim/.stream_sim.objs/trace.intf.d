lib/sim/trace.mli: Engine Mapping
