lib/sim/stage_latency.ml: Array Dag List Mapping Option Platform Replica Topo
