lib/sim/stage_latency.mli: Mapping Platform
