lib/sim/svg_gantt.mli: Engine Mapping
