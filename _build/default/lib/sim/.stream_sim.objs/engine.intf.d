lib/sim/engine.mli: Mapping Platform Replica
