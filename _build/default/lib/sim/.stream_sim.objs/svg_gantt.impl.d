lib/sim/svg_gantt.ml: Array Buffer Dag Engine Float Fun List Mapping Platform Printf Replica
