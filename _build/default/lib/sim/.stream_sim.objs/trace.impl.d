lib/sim/trace.ml: Array Buffer Dag Engine Fun List Mapping Platform Printf Replica String
