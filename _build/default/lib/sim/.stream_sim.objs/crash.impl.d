lib/sim/crash.ml: Engine List Mapping Platform
