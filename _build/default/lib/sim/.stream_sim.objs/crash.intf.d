lib/sim/crash.mli: Mapping Platform
