lib/sim/engine.ml: Array Dag Event_heap Float Fun Levels List Mapping Metrics Option Platform Replica Topo
