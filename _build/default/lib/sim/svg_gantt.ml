let palette =
  [|
    "#4e79a7"; "#f28e2b"; "#e15759"; "#76b7b2"; "#59a14f"; "#edc948";
    "#b07aa1"; "#ff9da7"; "#9c755f"; "#bab0ac";
  |]

let render ?(width = 960) ?(row_height = 34) ?(item = 0) mapping
    (result : Engine.result) =
  let plat = Mapping.platform mapping in
  let dag = Mapping.dag mapping in
  let n_procs = Platform.size plat in
  let margin_left = 46 and margin_top = 24 in
  let horizon = ref 0.0 in
  Mapping.iter mapping (fun r ->
      match result.Engine.finish_time item r.Replica.id with
      | Some f -> horizon := Float.max !horizon f
      | None -> ());
  List.iter
    (fun (m : Engine.message) ->
      if m.Engine.msg_src.Engine.item = item then
        horizon := Float.max !horizon m.Engine.msg_finish)
    result.Engine.messages;
  let horizon = if !horizon <= 0.0 then 1.0 else !horizon in
  let scale = float_of_int (width - margin_left - 10) /. horizon in
  let x t = float_of_int margin_left +. (t *. scale) in
  let buf = Buffer.create 8192 in
  let height = margin_top + (n_procs * row_height) + 30 in
  Buffer.add_string buf
    (Printf.sprintf
       {|<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="10">|}
       width height);
  Buffer.add_string buf "\n";
  (* processor lanes *)
  for p = 0 to n_procs - 1 do
    let y = margin_top + (p * row_height) in
    Buffer.add_string buf
      (Printf.sprintf
         {|<text x="4" y="%d" fill="#333">P%d</text><line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>|}
         (y + (row_height / 2)) p margin_left (y + row_height) (width - 10)
         (y + row_height));
    Buffer.add_string buf "\n"
  done;
  (* executions *)
  Mapping.iter mapping (fun (r : Replica.t) ->
      match
        ( result.Engine.start_time item r.Replica.id,
          result.Engine.finish_time item r.Replica.id )
      with
      | Some s, Some f ->
          let y = margin_top + (r.Replica.proc * row_height) + 3 in
          let color =
            palette.(r.Replica.id.Replica.task mod Array.length palette)
          in
          Buffer.add_string buf
            (Printf.sprintf
               {|<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="#333" stroke-width="0.5"><title>%s [%g, %g]</title></rect>|}
               (x s) y
               (Float.max 1.0 ((f -. s) *. scale))
               (row_height - 14) color
               (Replica.id_to_string r.Replica.id)
               s f);
          Buffer.add_string buf
            (Printf.sprintf
               {|<text x="%.1f" y="%d" fill="#fff">%s</text>|}
               (x s +. 2.0)
               (y + row_height - 20)
               (Dag.label dag r.Replica.id.Replica.task));
          Buffer.add_string buf "\n"
      | _ -> ());
  (* transfers, drawn in the sender's lower sub-row *)
  List.iter
    (fun (m : Engine.message) ->
      if m.Engine.msg_src.Engine.item = item then begin
        let src = m.Engine.msg_src.Engine.rep in
        let sp = (Mapping.replica_exn mapping src.Replica.task src.Replica.copy).Replica.proc in
        let y = margin_top + (sp * row_height) + row_height - 9 in
        Buffer.add_string buf
          (Printf.sprintf
             {|<rect x="%.1f" y="%d" width="%.1f" height="5" fill="#999"><title>%s -> %s</title></rect>|}
             (x m.Engine.msg_start) y
             (Float.max 1.0 ((m.Engine.msg_finish -. m.Engine.msg_start) *. scale))
             (Replica.id_to_string src)
             (Replica.id_to_string m.Engine.msg_dst.Engine.rep));
        Buffer.add_string buf "\n"
      end)
    result.Engine.messages;
  (* time axis *)
  let axis_y = margin_top + (n_procs * row_height) + 14 in
  Buffer.add_string buf
    (Printf.sprintf
       {|<text x="%d" y="%d" fill="#333">0</text><text x="%d" y="%d" fill="#333" text-anchor="end">%.2f</text>|}
       margin_left axis_y (width - 10) axis_y horizon);
  Buffer.add_string buf "\n</svg>\n";
  Buffer.contents buf

let save path ?item mapping result =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?item mapping result))
