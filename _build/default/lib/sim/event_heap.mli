(** A minimal binary min-heap keyed by floats, used as the event queue of the
    discrete-event simulator.  Ties are served in insertion order so runs are
    deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val add : 'a t -> float -> 'a -> unit
(** Insert an element with the given key. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the element with the smallest key; among equal keys,
    the earliest inserted. *)

val min_key : 'a t -> float option
