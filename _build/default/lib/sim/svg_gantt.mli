(** SVG Gantt charts of executed schedules — the publication-quality
    companion of {!Gantt}'s ASCII rendering (the OCaml ecosystem ships no
    plotting toolchain in this repository's dependency set, so figures are
    emitted directly as SVG). *)

val render :
  ?width:int ->
  ?row_height:int ->
  ?item:int ->
  Mapping.t ->
  Engine.result ->
  string
(** An SVG document with one row per processor: replica executions as
    filled boxes (one colour per task, labelled), transfers as thin boxes
    in a narrow sub-row.  [item] selects the data item (default 0);
    [width] is the drawing width in pixels (default 960). *)

val save : string -> ?item:int -> Mapping.t -> Engine.result -> unit
