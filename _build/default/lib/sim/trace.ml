let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* 1 simulated time unit = 1 ms = 1000 trace microseconds. *)
let us t = t *. 1000.0

let duration_event ~name ~pid ~tid ~start ~finish =
  Printf.sprintf
    {|{"name":"%s","ph":"X","pid":%d,"tid":%d,"ts":%.1f,"dur":%.1f}|}
    (escape name) pid tid (us start)
    (us (finish -. start))

let metadata_event ~pid ~name =
  Printf.sprintf
    {|{"name":"process_name","ph":"M","pid":%d,"args":{"name":"%s"}}|} pid
    (escape name)

let to_chrome_json mapping (result : Engine.result) =
  let dag = Mapping.dag mapping in
  let n_items = Array.length result.Engine.item_latency in
  let events = ref [] in
  let push e = events := e :: !events in
  (* Track naming: pid = processor, tid 0 = compute, tid 1 = send port. *)
  List.iter
    (fun p -> push (metadata_event ~pid:p ~name:(Printf.sprintf "P%d" p)))
    (Platform.procs (Mapping.platform mapping));
  for item = 0 to n_items - 1 do
    Mapping.iter mapping (fun (r : Replica.t) ->
        match
          ( result.Engine.start_time item r.Replica.id,
            result.Engine.finish_time item r.Replica.id )
        with
        | Some start, Some finish ->
            let name =
              Printf.sprintf "%s %s #%d"
                (Dag.label dag r.Replica.id.Replica.task)
                (Replica.id_to_string r.Replica.id)
                item
            in
            push (duration_event ~name ~pid:r.Replica.proc ~tid:0 ~start ~finish)
        | _ -> ())
  done;
  List.iter
    (fun (msg : Engine.message) ->
      let src = msg.Engine.msg_src and dst = msg.Engine.msg_dst in
      let src_proc =
        (Mapping.replica_exn mapping src.Engine.rep.Replica.task
           src.Engine.rep.Replica.copy)
          .Replica.proc
      in
      let name =
        Printf.sprintf "%s -> %s #%d"
          (Replica.id_to_string src.Engine.rep)
          (Replica.id_to_string dst.Engine.rep)
          src.Engine.item
      in
      push
        (duration_event ~name ~pid:src_proc ~tid:1 ~start:msg.Engine.msg_start
           ~finish:msg.Engine.msg_finish))
    result.Engine.messages;
  Printf.sprintf {|{"traceEvents":[%s],"displayTimeUnit":"ms"}|}
    (String.concat ",\n" (List.rev !events))

let save_chrome_json path mapping result =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json mapping result))
