(** Crash experiments (§5): latency of a schedule when [c] processors fail.

    The paper evaluates each schedule by "computing the real execution time
    for a given schedule rather than just bounds", with the failing
    processors "chosen uniformly from the range [1, 20]".  This module draws
    failure sets with a caller-supplied random source and replays the
    schedule through {!Engine}. *)

type outcome = {
  failed : Platform.proc list;  (** the processors that were failed *)
  latency : float option;
      (** single-item real latency; [None] when the failure set defeats the
          schedule (more failures than it tolerates, or an invalid
          schedule) *)
}

val with_failures : Mapping.t -> failed:Platform.proc list -> outcome
(** Deterministic single run. *)

val sample :
  rand_int:(int -> int) ->
  crashes:int ->
  Mapping.t ->
  outcome
(** Fail [crashes] distinct processors drawn uniformly with [rand_int]
    (where [rand_int n] returns a value in [0 .. n-1]) and replay.
    @raise Invalid_argument if [crashes] exceeds the processor count. *)

val mean_latency :
  rand_int:(int -> int) ->
  crashes:int ->
  runs:int ->
  Mapping.t ->
  float option
(** Average {!sample} latency over [runs] draws; [None] if every draw
    defeated the schedule.  Draws that defeat the schedule are excluded
    from the mean (with [crashes <= ε] none should). *)
