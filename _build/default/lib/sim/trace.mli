(** Execution trace export.

    Renders an {!Engine.result} as Chrome trace-event JSON
    (chrome://tracing, Perfetto): one lane per processor for computation,
    one per link direction for transfers.  Handy for inspecting one-port
    serialization and failure behaviour visually. *)

val to_chrome_json : Mapping.t -> Engine.result -> string
(** The complete JSON document (an object with a [traceEvents] array).
    Replica executions become duration events named ["tK(c) #item"] in a
    per-processor track; messages become duration events in the sender's
    [send] track.  Times are exported in microseconds (1 time unit = 1
    ms), as the trace viewer expects integers-ish scales. *)

val save_chrome_json : string -> Mapping.t -> Engine.result -> unit
(** Write {!to_chrome_json} to a file. *)
