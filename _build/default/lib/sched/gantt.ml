let render ?(width = 72) m ~times =
  let plat = Mapping.platform m in
  let horizon = ref 0.0 in
  Mapping.iter m (fun r ->
      match times r.Replica.id with
      | Some (_, finish) -> horizon := Float.max !horizon finish
      | None -> ());
  let buf = Buffer.create 1024 in
  if !horizon <= 0.0 then Buffer.add_string buf "(empty schedule)\n"
  else begin
    let scale = float_of_int width /. !horizon in
    let col time =
      min (width - 1) (int_of_float (Float.round (time *. scale)))
    in
    List.iter
      (fun p ->
        let row = Bytes.make width '.' in
        let labels = ref [] in
        List.iter
          (fun (r : Replica.t) ->
            match times r.id with
            | None -> ()
            | Some (start, finish) ->
                let c0 = col start and c1 = max (col start) (col finish - 1) in
                for c = c0 to c1 do
                  Bytes.set row c '#'
                done;
                labels :=
                  Printf.sprintf "%s@[%.2f,%.2f]" (Replica.id_to_string r.id)
                    start finish
                  :: !labels)
          (Mapping.on_proc m p);
        Buffer.add_string buf
          (Printf.sprintf "P%-3d |%s| %s\n" p (Bytes.to_string row)
             (String.concat " " (List.rev !labels))))
      (Platform.procs plat);
    Buffer.add_string buf
      (Printf.sprintf "time axis: 0 .. %.2f (%d cols)\n" !horizon width)
  end;
  Buffer.contents buf

let summary m =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      let names =
        Mapping.on_proc m p
        |> List.map (fun (r : Replica.t) -> Replica.id_to_string r.id)
      in
      Buffer.add_string buf
        (Printf.sprintf "P%-3d: %s\n" p (String.concat " " names)))
    (Platform.procs (Mapping.platform m));
  Buffer.contents buf
