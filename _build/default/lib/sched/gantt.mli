(** ASCII Gantt charts of executed schedules. *)

val render :
  ?width:int ->
  Mapping.t ->
  times:(Replica.id -> (float * float) option) ->
  string
(** [render m ~times] draws one row per processor; each placed replica with
    known [(start, finish)] times appears as a bar labelled with the replica
    name.  [width] is the number of character columns for the time axis
    (default 72).  Replicas with no recorded times (e.g. dead ones after a
    crash) are omitted. *)

val summary : Mapping.t -> string
(** A textual per-processor summary of the mapping (no timing): the replicas
    hosted by each processor in placement order. *)
