type id = { task : Dag.task; copy : int }

let compare_id a b =
  match compare a.task b.task with 0 -> compare a.copy b.copy | c -> c

let pp_id ppf { task; copy } = Format.fprintf ppf "t%d(%d)" task copy
let id_to_string id = Format.asprintf "%a" pp_id id

type t = {
  id : id;
  proc : Platform.proc;
  sources : (Dag.task * id list) list;
}

let sources_for r task = List.assoc task r.sources

let pp ppf r =
  Format.fprintf ppf "@[%a on P%d" pp_id r.id r.proc;
  if r.sources <> [] then begin
    Format.fprintf ppf " <-";
    List.iter
      (fun (pred, ids) ->
        Format.fprintf ppf " [t%d:" pred;
        List.iter (fun id -> Format.fprintf ppf " %a" pp_id id) ids;
        Format.fprintf ppf "]")
      r.sources
  end;
  Format.fprintf ppf "@]"
