type t = {
  dag : Dag.t;
  platform : Platform.t;
  eps : int;
  slots : Replica.t option array array; (* [task].(copy) *)
  by_proc : Replica.t list array;       (* reverse placement order *)
}

let create ~dag ~platform ~eps =
  if eps < 0 then invalid_arg "Mapping.create: negative eps";
  if eps >= Platform.size platform then
    invalid_arg "Mapping.create: eps must be smaller than the processor count";
  {
    dag;
    platform;
    eps;
    slots = Array.init (Dag.size dag) (fun _ -> Array.make (eps + 1) None);
    by_proc = Array.make (Platform.size platform) [];
  }

let dag m = m.dag
let platform m = m.platform
let eps m = m.eps
let n_copies m = m.eps + 1

let replica m task copy = m.slots.(task).(copy)

let replica_exn m task copy =
  match m.slots.(task).(copy) with
  | Some r -> r
  | None ->
      invalid_arg
        (Printf.sprintf "Mapping.replica_exn: t%d(%d) not placed" task copy)

let replicas_of_task m task =
  Array.to_list m.slots.(task) |> List.filter_map Fun.id

let scheduled m task = Array.for_all Option.is_some m.slots.(task)

let is_complete m =
  let rec check t = t >= Dag.size m.dag || (scheduled m t && check (t + 1)) in
  check 0

let on_proc m proc = List.rev m.by_proc.(proc)

let mapped m task proc =
  Array.exists
    (function Some (r : Replica.t) -> r.proc = proc | None -> false)
    m.slots.(task)

let procs_of_task m task =
  replicas_of_task m task
  |> List.map (fun (r : Replica.t) -> r.proc)
  |> List.sort_uniq compare

let check_sources m (r : Replica.t) =
  let pred_tasks = List.map fst (Dag.preds m.dag r.id.task) in
  let source_tasks = List.map fst r.sources in
  if List.sort compare source_tasks <> List.sort compare pred_tasks then
    invalid_arg
      (Printf.sprintf
         "Mapping.assign: sources of %s do not cover its predecessors"
         (Replica.id_to_string r.id));
  List.iter
    (fun (pred, ids) ->
      if ids = [] then
        invalid_arg
          (Printf.sprintf "Mapping.assign: empty source set for t%d of %s" pred
             (Replica.id_to_string r.id));
      List.iter
        (fun (src : Replica.id) ->
          if src.task <> pred then
            invalid_arg
              (Printf.sprintf "Mapping.assign: source %s is not a replica of t%d"
                 (Replica.id_to_string src) pred);
          if src.copy < 0 || src.copy > m.eps then
            invalid_arg "Mapping.assign: source copy out of range";
          if m.slots.(src.task).(src.copy) = None then
            invalid_arg
              (Printf.sprintf "Mapping.assign: source %s not placed yet"
                 (Replica.id_to_string src)))
        ids)
    r.sources

let assign m (r : Replica.t) =
  let { Replica.task; copy } = r.id in
  if task < 0 || task >= Dag.size m.dag then
    invalid_arg "Mapping.assign: task out of range";
  if copy < 0 || copy > m.eps then invalid_arg "Mapping.assign: copy out of range";
  if r.proc < 0 || r.proc >= Platform.size m.platform then
    invalid_arg "Mapping.assign: processor out of range";
  if m.slots.(task).(copy) <> None then
    invalid_arg
      (Printf.sprintf "Mapping.assign: %s already placed"
         (Replica.id_to_string r.id));
  if mapped m task r.proc then
    invalid_arg
      (Printf.sprintf
         "Mapping.assign: another replica of t%d already sits on P%d" task r.proc);
  check_sources m r;
  m.slots.(task).(copy) <- Some r;
  m.by_proc.(r.proc) <- r :: m.by_proc.(r.proc)

let iter m f =
  Array.iter (fun copies -> Array.iter (Option.iter f) copies) m.slots

let consumers m id =
  let acc = ref [] in
  iter m (fun (r : Replica.t) ->
      List.iter
        (fun (pred, ids) ->
          if pred = id.Replica.task
             && List.exists (fun i -> Replica.compare_id i id = 0) ids
          then begin
            let vol = Dag.volume m.dag pred r.id.task in
            acc := (r.id, vol) :: !acc
          end)
        r.sources);
  List.rev !acc

let n_messages m =
  let count = ref 0 in
  iter m (fun (r : Replica.t) ->
      List.iter
        (fun (_, ids) ->
          List.iter
            (fun (src : Replica.id) ->
              match m.slots.(src.task).(src.copy) with
              | Some src_r when src_r.proc <> r.proc -> incr count
              | _ -> ())
            ids)
        r.sources);
  !count

let pp ppf m =
  Format.fprintf ppf "@[<v>mapping (eps=%d) of %S on %S@," m.eps
    (Dag.name m.dag)
    (Platform.name m.platform);
  iter m (fun r -> Format.fprintf ppf "%a@," Replica.pp r);
  Format.fprintf ppf "@]"
