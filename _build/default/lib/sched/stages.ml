type t = {
  stage : int array array; (* [task].(copy); 0 = not placed *)
  depth : int;
}

let compute m =
  let dag = Mapping.dag m in
  let copies = Mapping.n_copies m in
  let stage = Array.init (Dag.size dag) (fun _ -> Array.make copies 0) in
  let depth = ref 0 in
  (* Replicas are staged in topological task order: every source replica
     belongs to a predecessor task, hence is already staged. *)
  Array.iter
    (fun task ->
      for copy = 0 to copies - 1 do
        match Mapping.replica m task copy with
        | None -> ()
        | Some r ->
            let s =
              List.fold_left
                (fun acc (_, ids) ->
                  List.fold_left
                    (fun acc (src : Replica.id) ->
                      let src_r = Mapping.replica_exn m src.task src.copy in
                      let eta = if src_r.proc = r.proc then 0 else 1 in
                      max acc (stage.(src.task).(src.copy) + eta))
                    acc ids)
                1 r.sources
            in
            stage.(task).(copy) <- s;
            if s > !depth then depth := s
      done)
    (Topo.order dag);
  { stage; depth = !depth }

let of_replica t (id : Replica.id) =
  let s = t.stage.(id.task).(id.copy) in
  if s = 0 then
    invalid_arg
      (Printf.sprintf "Stages.of_replica: %s not placed" (Replica.id_to_string id));
  s

let depth t = t.depth

let replicas_in_stage t s =
  let acc = ref [] in
  for task = Array.length t.stage - 1 downto 0 do
    for copy = Array.length t.stage.(task) - 1 downto 0 do
      if t.stage.(task).(copy) = s then
        acc := { Replica.task; copy } :: !acc
    done
  done;
  !acc
