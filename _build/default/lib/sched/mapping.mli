(** Replicated mappings of a task graph onto a platform.

    A mapping places [ε + 1] replicas of every task onto processors and
    records the source replicas of every placed replica; it is the matrix
    [X] of §2 enriched with the replica-level communication structure.
    Mappings are built incrementally (the scheduling algorithms place one
    replica at a time) and may be inspected while partial. *)

type t

val create : dag:Dag.t -> platform:Platform.t -> eps:int -> t
(** An empty mapping tolerating [eps] failures ([eps + 1] replicas per
    task).  @raise Invalid_argument if [eps < 0] or
    [eps >= Platform.size platform] (replicas of a task must live on
    distinct processors). *)

val dag : t -> Dag.t
val platform : t -> Platform.t
val eps : t -> int

val n_copies : t -> int
(** [eps + 1]. *)

val assign : t -> Replica.t -> unit
(** Place one replica.  Checks that: the slot is still free; the processor
    is valid; no other replica of the same task already sits on that
    processor; the sources cover exactly the predecessors of the task, each
    with at least one already-placed replica of that predecessor.
    @raise Invalid_argument otherwise. *)

val replica : t -> Dag.task -> int -> Replica.t option
val replica_exn : t -> Dag.task -> int -> Replica.t

val replicas_of_task : t -> Dag.task -> Replica.t list
(** Placed replicas of a task, in copy order ([B(t)] of §4 once complete). *)

val scheduled : t -> Dag.task -> bool
(** All [eps + 1] replicas of the task are placed. *)

val is_complete : t -> bool
(** Every task is {!scheduled}. *)

val on_proc : t -> Platform.proc -> Replica.t list
(** Replicas placed on a processor, in placement order. *)

val mapped : t -> Dag.task -> Platform.proc -> bool
(** Element [X_{iu}] of the mapping matrix. *)

val procs_of_task : t -> Dag.task -> Platform.proc list
(** Processors hosting a replica of the task (increasing order). *)

val iter : t -> (Replica.t -> unit) -> unit
(** Iterate over placed replicas in (task, copy) order. *)

val consumers : t -> Replica.id -> (Replica.id * float) list
(** Replicas that list the given replica as a source, with the volume of the
    corresponding DAG edge.  Computed on demand (linear scan). *)

val n_messages : t -> int
(** Number of replica-to-replica communications that cross processors
    (the quantity Rule 2 of R-LTF tries to keep near [e(ε+1)]). *)

val pp : Format.formatter -> t -> unit
