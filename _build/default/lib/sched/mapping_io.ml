type error = { line : int; message : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

let fail line fmt = Printf.ksprintf (fun message -> Error { line; message }) fmt

let print m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "mapping eps %d\n" (Mapping.eps m));
  (* Topological task order guarantees sources precede their consumers
     when the file is replayed. *)
  Array.iter
    (fun task ->
      for copy = 0 to Mapping.eps m do
        match Mapping.replica m task copy with
        | None -> ()
        | Some r ->
            Buffer.add_string buf
              (Printf.sprintf "replica %d %d on %d" task copy r.Replica.proc);
            List.iter
              (fun (pred, ids) ->
                Buffer.add_string buf
                  (Printf.sprintf " from %d:%s" pred
                     (String.concat ","
                        (List.map
                           (fun (s : Replica.id) -> string_of_int s.copy)
                           ids))))
              r.Replica.sources;
            Buffer.add_char buf '\n'
      done)
    (Topo.order (Mapping.dag m));
  Buffer.contents buf

let tokenize contents =
  String.split_on_char '\n' contents
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (n, line) ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         match
           String.split_on_char ' ' line |> List.filter (fun f -> f <> "")
         with
         | [] -> None
         | fields -> Some (n, fields))

let parse_int line what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> fail line "cannot parse %s %S" what s

let parse_sources line fields =
  (* fields: alternating "from" "<pred>:<c1>,<c2>" groups *)
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | "from" :: group :: rest -> (
        match String.split_on_char ':' group with
        | [ pred_s; copies_s ] -> (
            match parse_int line "predecessor" pred_s with
            | Error e -> Error e
            | Ok pred -> (
                let copies = String.split_on_char ',' copies_s in
                let rec parse_copies acc' = function
                  | [] -> Ok (List.rev acc')
                  | c :: cs -> (
                      match parse_int line "source copy" c with
                      | Ok copy ->
                          parse_copies ({ Replica.task = pred; copy } :: acc') cs
                      | Error e -> Error e)
                in
                match parse_copies [] copies with
                | Ok ids -> loop ((pred, ids) :: acc) rest
                | Error e -> Error e))
        | _ -> fail line "malformed source group %S" group)
    | junk :: _ -> fail line "unexpected %S in a replica line" junk
  in
  loop [] fields

let parse ~dag ~platform contents =
  let lines = tokenize contents in
  let eps_decl, body =
    match lines with
    | (line, [ "mapping"; "eps"; e ]) :: rest -> (
        match parse_int line "eps" e with
        | Ok eps -> (Ok eps, rest)
        | Error err -> (Error err, rest))
    | (line, _) :: _ -> (fail line "expected \"mapping eps <n>\"", [])
    | [] -> (fail 0 "empty mapping file", [])
  in
  match eps_decl with
  | Error e -> Error e
  | Ok eps -> (
      match Mapping.create ~dag ~platform ~eps with
      | exception Invalid_argument msg -> fail 0 "%s" msg
      | mapping -> (
          let rec replay = function
            | [] -> Ok ()
            | (line, "replica" :: task_s :: copy_s :: "on" :: proc_s :: sources_f)
              :: rest -> (
                match
                  (parse_int line "task" task_s, parse_int line "copy" copy_s,
                   parse_int line "processor" proc_s)
                with
                | Ok task, Ok copy, Ok proc -> (
                    match parse_sources line sources_f with
                    | Error e -> Error e
                    | Ok sources -> (
                        match
                          Mapping.assign mapping
                            { Replica.id = { Replica.task; copy }; proc; sources }
                        with
                        | () -> replay rest
                        | exception Invalid_argument msg -> fail line "%s" msg))
                | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
            | (line, _) :: _ -> fail line "expected a replica line"
          in
          match replay body with
          | Error e -> Error e
          | Ok () ->
              if Mapping.is_complete mapping then Ok mapping
              else fail 0 "the file does not place every replica"))

let save path m =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (print m))

let load ~dag ~platform path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> parse ~dag ~platform contents
  | exception Sys_error msg -> fail 0 "%s" msg
