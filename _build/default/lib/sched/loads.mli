(** Per-processor computation and communication loads (§4).

    For a mapping [X], processor [u] carries per data item:
    - a computing load [Σ_u = Σ_{replicas r on u} E(task r) / s_u];
    - an input communication cycle time [Cᴵ_u]: total time the receive port
      of [u] is busy, i.e. the sum over replicas on [u] and over their
      off-processor sources of the corresponding transfer times;
    - an output cycle time [Cᴼ_u], symmetrically for the send port.

    The cycle time of [u] is [Δ_u = max(Σ_u, Cᴵ_u, Cᴼ_u)] and the achieved
    throughput is [1 / max_u Δ_u]. *)

type t = {
  sigma : float array;  (** computing load per processor *)
  c_in : float array;   (** receive-port load per processor *)
  c_out : float array;  (** send-port load per processor *)
}

val of_mapping : Mapping.t -> t
(** Loads of a (possibly partial) mapping: only placed replicas count. *)

val cycle_time : t -> Platform.proc -> float
(** [Δ_u]. *)

val max_cycle_time : t -> float
(** [max_u Δ_u]; [0] for an empty mapping. *)

val utilization : t -> throughput:float -> Platform.proc -> float
(** [U_{P_u} = T · Σ_u] (§4); between 0 and 1 whenever the throughput
    constraint holds on [u]. *)
