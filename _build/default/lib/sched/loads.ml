type t = {
  sigma : float array;
  c_in : float array;
  c_out : float array;
}

let of_mapping m =
  let plat = Mapping.platform m in
  let dag = Mapping.dag m in
  let n = Platform.size plat in
  let loads =
    { sigma = Array.make n 0.0; c_in = Array.make n 0.0; c_out = Array.make n 0.0 }
  in
  Mapping.iter m (fun (r : Replica.t) ->
      loads.sigma.(r.proc) <-
        loads.sigma.(r.proc) +. Platform.exec_time plat r.proc (Dag.exec dag r.id.task);
      List.iter
        (fun (pred, ids) ->
          let vol = Dag.volume dag pred r.id.task in
          List.iter
            (fun (src : Replica.id) ->
              let src_r = Mapping.replica_exn m src.task src.copy in
              if src_r.proc <> r.proc then begin
                let time = Platform.comm_time plat src_r.proc r.proc vol in
                loads.c_in.(r.proc) <- loads.c_in.(r.proc) +. time;
                loads.c_out.(src_r.proc) <- loads.c_out.(src_r.proc) +. time
              end)
            ids)
        r.sources);
  loads

let cycle_time l u = Float.max l.sigma.(u) (Float.max l.c_in.(u) l.c_out.(u))

let max_cycle_time l =
  let best = ref 0.0 in
  Array.iteri (fun u _ -> best := Float.max !best (cycle_time l u)) l.sigma;
  !best

let utilization l ~throughput u = throughput *. l.sigma.(u)
