(** Structural and semantic validation of replicated mappings.

    The checker re-verifies from first principles the guarantees the
    scheduling algorithms are supposed to establish; it is used pervasively
    by the test suite and available to library users as a debugging aid. *)

type error =
  | Missing_replica of Replica.id
      (** the mapping is incomplete *)
  | Colocated_replicas of Dag.task * Platform.proc
      (** two replicas of the same task share a processor *)
  | Bad_source of Replica.id * string
      (** a source set does not match the DAG predecessors *)
  | Throughput_violated of Platform.proc * float
      (** cycle time of the processor exceeds the period (value = Δ_u) *)
  | Not_fault_tolerant of Platform.proc list
      (** this set of at most ε processor failures loses some exit task *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val structure : Mapping.t -> error list
(** Completeness, replica-placement disjointness and source-set shape.
    An empty list means the mapping is structurally sound. *)

val throughput : Mapping.t -> throughput:float -> error list
(** Per-processor throughput feasibility ([Δ_u ≤ 1/T] for all [u]). *)

val survives : Mapping.t -> failed:Platform.proc list -> bool
(** Whether every exit task still produces a result when the given
    processors fail (fail-silent from time 0): a replica is alive iff its
    processor survives and, for each predecessor, at least one of its source
    replicas is alive; an exit task must retain at least one alive
    replica.  Requires a structurally sound mapping. *)

val fault_tolerance : ?max_failures:int -> Mapping.t -> error list
(** Exhaustively check {!survives} for every failure set of size up to
    [max_failures] (default [eps]).  Exponential in [max_failures]; intended
    for tests with small ε and m. *)

val all : Mapping.t -> throughput:float -> error list
(** {!structure}, then (if sound) {!throughput} and {!fault_tolerance}. *)
