type error =
  | Missing_replica of Replica.id
  | Colocated_replicas of Dag.task * Platform.proc
  | Bad_source of Replica.id * string
  | Throughput_violated of Platform.proc * float
  | Not_fault_tolerant of Platform.proc list

let pp_error ppf = function
  | Missing_replica id ->
      Format.fprintf ppf "replica %a is not placed" Replica.pp_id id
  | Colocated_replicas (t, p) ->
      Format.fprintf ppf "two replicas of t%d share processor P%d" t p
  | Bad_source (id, msg) ->
      Format.fprintf ppf "bad source set for %a: %s" Replica.pp_id id msg
  | Throughput_violated (p, delta) ->
      Format.fprintf ppf "cycle time %g of P%d exceeds the period" delta p
  | Not_fault_tolerant failed ->
      Format.fprintf ppf "failure of {%s} loses an exit task"
        (String.concat ", " (List.map (Printf.sprintf "P%d") failed))

let error_to_string e = Format.asprintf "%a" pp_error e

let structure m =
  let dag = Mapping.dag m in
  let errors = ref [] in
  let report e = errors := e :: !errors in
  Dag.iter_tasks dag (fun task ->
      let placed = ref [] in
      for copy = 0 to Mapping.eps m do
        match Mapping.replica m task copy with
        | None -> report (Missing_replica { Replica.task; copy })
        | Some r ->
            if List.mem r.Replica.proc !placed then
              report (Colocated_replicas (task, r.Replica.proc))
            else placed := r.Replica.proc :: !placed;
            (* Source sets: cover exactly the predecessors, with placed
               replicas of the right task. *)
            let preds = List.map fst (Dag.preds dag task) in
            let covered = List.map fst r.Replica.sources in
            if List.sort compare covered <> List.sort compare preds then
              report (Bad_source (r.Replica.id, "does not cover the predecessors"))
            else
              List.iter
                (fun (pred, ids) ->
                  if ids = [] then
                    report (Bad_source (r.Replica.id, "empty source list"))
                  else
                    List.iter
                      (fun (src : Replica.id) ->
                        if src.task <> pred then
                          report
                            (Bad_source (r.Replica.id, "source of the wrong task"))
                        else if Mapping.replica m src.task src.copy = None then
                          report (Bad_source (r.Replica.id, "unplaced source")))
                      ids)
                r.Replica.sources
      done);
  List.rev !errors

let throughput m ~throughput =
  let loads = Loads.of_mapping m in
  let budget = 1.0 /. throughput in
  let slack = 1.0 +. 1e-9 in
  let errors = ref [] in
  for u = Platform.size (Mapping.platform m) - 1 downto 0 do
    let delta = Loads.cycle_time loads u in
    if delta > budget *. slack then errors := Throughput_violated (u, delta) :: !errors
  done;
  !errors

let survives m ~failed =
  let dag = Mapping.dag m in
  let copies = Mapping.n_copies m in
  let dead_proc = Array.make (Platform.size (Mapping.platform m)) false in
  List.iter (fun p -> dead_proc.(p) <- true) failed;
  let alive = Array.init (Dag.size dag) (fun _ -> Array.make copies false) in
  (* Propagate liveness in topological order: a replica is alive iff its
     processor survives and every predecessor task has at least one alive
     replica among this replica's sources. *)
  Array.iter
    (fun task ->
      for copy = 0 to copies - 1 do
        match Mapping.replica m task copy with
        | None -> ()
        | Some r ->
            if not dead_proc.(r.Replica.proc) then begin
              let fed =
                List.for_all
                  (fun (_, ids) ->
                    List.exists
                      (fun (src : Replica.id) -> alive.(src.task).(src.copy))
                      ids)
                  r.Replica.sources
              in
              alive.(task).(copy) <- fed
            end
      done)
    (Topo.order dag);
  List.for_all
    (fun exit_task -> Array.exists Fun.id alive.(exit_task))
    (Dag.exits dag)

let fault_tolerance ?max_failures m =
  let eps = match max_failures with Some k -> k | None -> Mapping.eps m in
  let m_procs = Platform.size (Mapping.platform m) in
  let errors = ref [] in
  (* Enumerate failure sets of size exactly [eps]; smaller sets are
     dominated (failing fewer processors only helps). *)
  let rec enumerate chosen first remaining =
    if remaining = 0 then begin
      let failed = List.rev chosen in
      if not (survives m ~failed) then errors := Not_fault_tolerant failed :: !errors
    end
    else
      for p = first to m_procs - remaining do
        enumerate (p :: chosen) (p + 1) (remaining - 1)
      done
  in
  if eps > 0 && Dag.size (Mapping.dag m) > 0 then enumerate [] 0 (min eps m_procs);
  List.rev !errors

let all m ~throughput:t =
  match structure m with
  | _ :: _ as errors -> errors
  | [] -> throughput m ~throughput:t @ fault_tolerance m
