(** Plain-text serialization of replicated mappings, so schedules can be
    computed once and replayed elsewhere (same spirit as the workflow
    files of [Workflow_io]).

    Format, one replica per line in any topological-compatible order:

    {v
    mapping eps 1
    replica 0 0 on 2
    replica 0 1 on 5
    replica 3 0 on 2 from 0:0 from 1:0,1
    v}

    [replica <task> <copy> on <proc>] followed by one [from
    <pred>:<copy>,<copy>…] group per predecessor.  The graph and platform
    are not embedded; parsing happens against a caller-supplied DAG and
    platform and re-runs every structural check of {!Mapping.assign}. *)

type error = { line : int; message : string }

val error_to_string : error -> string

val print : Mapping.t -> string

val parse :
  dag:Dag.t -> platform:Platform.t -> string -> (Mapping.t, error) result
(** Rebuild a mapping from its textual form.  Fails with the offending
    line on unknown tasks/processors, duplicate or missing replicas,
    malformed source groups, or any {!Mapping.assign} rejection. *)

val save : string -> Mapping.t -> unit

val load :
  dag:Dag.t -> platform:Platform.t -> string -> (Mapping.t, error) result
