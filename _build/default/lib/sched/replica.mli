(** Task replicas.

    The active replication scheme (§2) executes each task [ε + 1] times;
    replica [copy N] of task [t] is the paper's [t^(N)] (0-based here).  A
    placed replica records its processor and, for every predecessor task,
    the set of source replicas it receives its input from: a singleton when
    the replica was placed by the one-to-one mapping procedure, all [ε + 1]
    predecessor replicas otherwise. *)

type id = { task : Dag.task; copy : int }

val compare_id : id -> id -> int
val pp_id : Format.formatter -> id -> unit
val id_to_string : id -> string

type t = {
  id : id;
  proc : Platform.proc;
  sources : (Dag.task * id list) list;
      (** One entry per predecessor task of [id.task], in increasing
          predecessor order; each entry lists the replicas of that
          predecessor whose output this replica consumes (at least one). *)
}

val sources_for : t -> Dag.task -> id list
(** Source replicas for one predecessor task.
    @raise Not_found if the task is not a predecessor. *)

val pp : Format.formatter -> t -> unit
