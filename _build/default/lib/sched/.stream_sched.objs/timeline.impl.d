lib/sched/timeline.ml: Float List
