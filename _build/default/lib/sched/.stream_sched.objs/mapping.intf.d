lib/sched/mapping.mli: Dag Format Platform Replica
