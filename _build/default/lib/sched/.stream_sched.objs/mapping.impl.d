lib/sched/mapping.ml: Array Dag Format Fun List Option Platform Printf Replica
