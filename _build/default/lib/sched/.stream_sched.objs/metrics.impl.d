lib/sched/metrics.ml: Array Dag Loads Mapping Platform Stages
