lib/sched/mapping_io.mli: Dag Mapping Platform
