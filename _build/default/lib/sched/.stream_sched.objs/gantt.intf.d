lib/sched/gantt.mli: Mapping Replica
