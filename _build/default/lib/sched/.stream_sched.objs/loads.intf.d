lib/sched/loads.mli: Mapping Platform
