lib/sched/replica.mli: Dag Format Platform
