lib/sched/replica.ml: Dag Format List Platform
