lib/sched/gantt.ml: Buffer Bytes Float List Mapping Platform Printf Replica String
