lib/sched/stages.ml: Array Dag List Mapping Printf Replica Topo
