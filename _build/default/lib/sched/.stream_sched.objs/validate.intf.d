lib/sched/validate.mli: Dag Format Mapping Platform Replica
