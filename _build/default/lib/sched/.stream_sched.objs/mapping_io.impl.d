lib/sched/mapping_io.ml: Array Buffer Fun List Mapping Printf Replica String Topo
