lib/sched/stages.mli: Mapping Replica
