lib/sched/validate.ml: Array Dag Format Fun List Loads Mapping Platform Printf Replica String Topo
