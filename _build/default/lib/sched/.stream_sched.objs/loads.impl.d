lib/sched/loads.ml: Array Dag Float List Mapping Platform Replica
