lib/sched/metrics.mli: Dag Mapping Platform
