lib/sched/timeline.mli:
