(* Sorted list of disjoint busy intervals [(start, finish)].  Schedules
   touch a few dozen intervals per resource, so linear scans are fine and
   keep the structure persistent. *)

type t = (float * float) list

let empty = []

let eps = 1e-12

let earliest_fit t ~ready ~duration =
  if duration < 0.0 then invalid_arg "Timeline.earliest_fit: negative duration";
  let rec scan candidate = function
    | [] -> candidate
    | (s, f) :: rest ->
        if candidate +. duration <= s +. eps then candidate
        else scan (Float.max candidate f) rest
  in
  scan ready t

let insert t ~start ~duration =
  if duration < 0.0 then invalid_arg "Timeline.insert: negative duration";
  if duration = 0.0 then t
  else begin
    let finish = start +. duration in
    let rec place acc = function
      | [] -> List.rev ((start, finish) :: acc)
      | (s, f) :: rest ->
          if finish <= s +. eps then List.rev_append acc ((start, finish) :: (s, f) :: rest)
          else if f <= start +. eps then place ((s, f) :: acc) rest
          else invalid_arg "Timeline.insert: overlapping interval"
    in
    place [] t
  end

let busy_until t = List.fold_left (fun _ (_, f) -> f) 0.0 t

let total_busy t = List.fold_left (fun acc (s, f) -> acc +. (f -. s)) 0.0 t

let intervals t = t
