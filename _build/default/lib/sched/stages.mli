(** Pipeline stages (§4).

    Stages record processor changes along dependence paths: entry replicas
    are in stage 1, and a replica's stage is
    [S = max over its source replicas of (S_source + η)] with [η = 0] when
    source and consumer share a processor and [η = 1] otherwise.  The
    pipeline depth [S] of a mapping is the largest replica stage, and drives
    the latency [L = (2S − 1) / T]. *)

type t

val compute : Mapping.t -> t
(** Stages of a complete or partial mapping.  For partial mappings only the
    placed replicas (whose sources are necessarily placed) are staged. *)

val of_replica : t -> Replica.id -> int
(** Stage of a placed replica (≥ 1).
    @raise Invalid_argument if the replica is not placed. *)

val depth : t -> int
(** The pipeline stage number [S]: largest replica stage, or [0] for an
    empty mapping. *)

val replicas_in_stage : t -> int -> Replica.id list
(** Replicas of a given stage, in (task, copy) order. *)
