(** Extension E: platform cost minimization (§6's last bullet).

    For paper-workload instances, rent the cheapest subset of the
    20-processor platform on which R-LTF still meets the throughput and a
    latency budget, and report the saving. *)

type row = {
  granularity : float;
  kept_procs : Stats.summary;   (** processors still rented *)
  cost_fraction : Stats.summary; (** kept cost / full cost, in [0, 1] *)
}

val run :
  ?out_dir:string ->
  ?seed:int ->
  ?graphs:int ->
  ?eps:int ->
  ?latency_factor:float ->
  unit ->
  row list
(** Defaults: 8 graphs per granularity in {0.6, 1.0, 1.6}, ε = 1, latency
    budget 1.5× the full-platform R-LTF bound.  Prints a table and writes
    [fig-cost.csv]. *)
