(** Minimal CSV output for the regenerated figures (one file per figure,
    one column per series, gnuplot/spreadsheet-friendly). *)

val escape : string -> string
(** Quote a field if it contains commas, quotes or newlines. *)

val write : path:string -> header:string list -> string list list -> unit
(** Write a header row and data rows; creates parent directories. *)

val write_floats :
  path:string -> header:string list -> float list list -> unit
(** Rows of floats rendered with [%.6g]; NaNs become empty cells. *)
