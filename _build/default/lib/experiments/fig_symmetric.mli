(** Extension B: the symmetric problems of §6 on the paper workload.

    For each random instance: the largest throughput R-LTF sustains under
    a latency bound (and ε = 1), and the largest ε it sustains under the
    paper's throughput and the same latency bound. *)

type row = {
  granularity : float;
  best_throughput : Stats.summary;  (** over the instances that admitted one *)
  best_eps : Stats.summary;
}

val run :
  ?out_dir:string ->
  ?seed:int ->
  ?graphs:int ->
  ?latency_factor:float ->
  unit ->
  row list
(** [latency_factor] (default 1.5) sets the latency bound to
    [factor × (2S−1)/T] of the plain R-LTF schedule of the instance.
    Prints a table and writes [fig-symmetric.csv]. *)
