(** Registry of the reproducible experiments, used by
    [bin/experiments.exe] and the integration tests. *)

type experiment = {
  name : string;        (** CLI name, e.g. "fig3a" *)
  description : string;
  run : quick:bool -> seed:int -> out_dir:string -> unit;
      (** [quick] shrinks the per-point replication for smoke runs *)
}

val all : experiment list
(** fig3a fig3b fig3c fig4a fig4b fig4c examples baselines complexity
    symmetric ablation pipeline optgap families topology cost — in that
    order. *)

val find : string -> experiment option

val names : string list
