(** Aligned plain-text tables for terminal output. *)

val render : header:string list -> string list list -> string
(** Columns padded to their widest cell, header separated by a rule.
    Ragged rows are padded with empty cells. *)

val print : header:string list -> string list list -> unit
