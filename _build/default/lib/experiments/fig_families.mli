(** Extension H: robustness of the conclusions across graph families.

    The paper's random graphs are layered; this experiment re-runs the
    core comparison (LTF vs R-LTF, ε = 1, g = 1.0) on the other structural
    families of the literature — bounded fan-in/out growth, series-parallel
    graphs and split/join stream pipelines — to check that the headline
    ordering (R-LTF needs fewer stages and less latency) is not an artifact
    of the layered generator. *)

type row = {
  family : string;
  algo : string;
  stages : Stats.summary;
  latency : Stats.summary;
  meets : int;
}

val run :
  ?out_dir:string -> ?seed:int -> ?graphs:int -> unit -> row list
(** Defaults: 12 graphs per family.  Prints a table and writes
    [fig-families.csv]. *)
