(** Extension G: sensitivity to the platform topology.

    The paper draws link delays i.i.d.; this experiment re-runs LTF and
    R-LTF on the same workflows over three 16-processor topologies with
    equal aggregate bandwidth — uniform, clustered (fast islands, slow
    backbone) and star — and reports how the placement adapts: stages,
    latency bound, messages, and the fraction of transfers that stay on
    fast links. *)

type row = {
  topology : string;
  algo : string;
  stages : Stats.summary;
  latency : Stats.summary;
  messages : Stats.summary;
  meets : int;
}

val run :
  ?out_dir:string -> ?seed:int -> ?graphs:int -> unit -> row list
(** Defaults: 12 graphs, ε = 1, paper workload graphs re-targeted to the
    16-processor topologies.  Prints a table and writes
    [fig-topology.csv]. *)
