let render ~header rows =
  let n_cols =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length header)
      rows
  in
  let pad row = row @ List.init (n_cols - List.length row) (fun _ -> "") in
  let all = List.map pad (header :: rows) in
  let widths = Array.make n_cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  let put_row row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf cell;
        if i < n_cols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell + 2) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  (match all with
  | header_row :: data ->
      put_row header_row;
      let rule = List.init n_cols (fun i -> String.make widths.(i) '-') in
      put_row rule;
      List.iter put_row data
  | [] -> ());
  Buffer.contents buf

let print ~header rows = print_string (render ~header rows)
