type row = {
  name : string;
  strict_ok : int;
  meets : int;
  stages : Stats.summary;
  latency : Stats.summary;
  messages : Stats.summary;
}

let configurations =
  let default = Scheduler.default_options in
  [
    ("default", default);
    ("no one-to-one", { default with Scheduler.use_one_to_one = false });
    ("greedy sources only", { default with Scheduler.source_policy = Scheduler.Greedy_only });
    ( "conservative sources only",
      { default with Scheduler.source_policy = Scheduler.Conservative_only } );
    ("half lane budget", { default with Scheduler.lane_budget_factor = 0.5 });
    ("double lane budget", { default with Scheduler.lane_budget_factor = 2.0 });
  ]

let run ?(out_dir = "results") ?(seed = 2009) ?(graphs = 20)
    ?(granularity = 1.0) ?(eps = 1) () =
  let throughput = Paper_workload.throughput ~eps in
  let rows =
    List.map
      (fun (name, opts) ->
        let strict_ok = ref 0 and meets = ref 0 in
        let stages = ref [] and latency = ref [] and messages = ref [] in
        for rep = 0 to graphs - 1 do
          let rng = Rng.create ~seed:(seed + (7919 * rep)) in
          let inst = Paper_workload.instance ~rng ~granularity () in
          let prob =
            Types.problem ~dag:inst.Paper_workload.dag
              ~platform:inst.Paper_workload.plat ~eps ~throughput
          in
          (match Rltf.run ~opts prob with Ok _ -> incr strict_ok | Error _ -> ());
          match Rltf.run ~mode:Scheduler.Best_effort ~opts prob with
          | Error _ -> ()
          | Ok m ->
              if Metrics.meets_throughput m ~throughput then incr meets;
              stages := float_of_int (Metrics.stage_depth m) :: !stages;
              latency := Metrics.latency_bound m ~throughput :: !latency;
              messages := float_of_int (Mapping.n_messages m) :: !messages
        done;
        {
          name;
          strict_ok = !strict_ok;
          meets = !meets;
          stages = Stats.summarize !stages;
          latency = Stats.summarize !latency;
          messages = Stats.summarize !messages;
        })
      configurations
  in
  Printf.printf
    "Ablation of the R-LTF implementation (g=%.1f, eps=%d, %d graphs):\n"
    granularity eps graphs;
  Ascii_table.print
    ~header:
      [ "configuration"; "strict ok"; "meets T"; "stages"; "latency bound"; "messages" ]
    (List.map
       (fun r ->
         [
           r.name;
           Printf.sprintf "%d/%d" r.strict_ok graphs;
           Printf.sprintf "%d/%d" r.meets graphs;
           Printf.sprintf "%.1f" r.stages.Stats.mean;
           Printf.sprintf "%.0f" r.latency.Stats.mean;
           Printf.sprintf "%.0f" r.messages.Stats.mean;
         ])
       rows);
  Csv.write
    ~path:(Filename.concat out_dir "fig-ablation.csv")
    ~header:
      [ "configuration"; "strict_ok"; "meets_T"; "stages"; "latency_bound"; "messages" ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.strict_ok;
           string_of_int r.meets;
           Printf.sprintf "%.3f" r.stages.Stats.mean;
           Printf.sprintf "%.3f" r.latency.Stats.mean;
           Printf.sprintf "%.3f" r.messages.Stats.mean;
         ])
       rows);
  rows
