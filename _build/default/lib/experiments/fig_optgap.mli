(** Extension F: optimality gap of the heuristics on small instances.

    An exact branch-and-bound ({!Optimal}) computes the minimum pipeline
    stage number for small ε = 0 instances; the heuristics' stage counts
    are reported relative to it.  This quantifies how much latency the
    greedy placement leaves on the table — something the paper could not
    report without an exact reference. *)

type row = {
  name : string;
  mean_stages : float;
  mean_ratio : float;   (** stages / optimal stages, averaged *)
  optimal_hits : int;   (** instances where the heuristic matched the optimum *)
}

val run :
  ?out_dir:string ->
  ?seed:int ->
  ?graphs:int ->
  ?tasks:int ->
  ?m:int ->
  unit ->
  row list
(** Defaults: 15 graphs of 9 tasks on 4 homogeneous processors.  Prints a
    table and writes [fig-optgap.csv].  Instances whose exact search
    exceeds the node limit are skipped. *)
