type config = {
  seed : int;
  graphs_per_point : int;
  eps : int;
  crashes : int;
  crash_draws : int;
  spec : Paper_workload.spec;
  mode : Scheduler.mode;
  granularities : float list;
}

let default ~eps ~crashes =
  {
    seed = 2009;
    graphs_per_point = 60;
    eps;
    crashes;
    crash_draws = 3;
    spec = Paper_workload.default_spec;
    mode = Scheduler.Best_effort;
    granularities = Paper_workload.granularities;
  }

let quick ~eps ~crashes =
  { (default ~eps ~crashes) with graphs_per_point = 8 }

type sample = {
  granularity : float;
  ltf_bound : float;
  ltf_sim : float;
  ltf_crash : float;
  ltf_meets : bool;
  rltf_bound : float;
  rltf_sim : float;
  rltf_crash : float;
  rltf_meets : bool;
  ff_sim : float;
}

let of_option = function Some v -> v | None -> nan

let measure_algo config ~throughput ~rng outcome =
  match outcome with
  | Error _ -> (nan, nan, nan, false)
  | Ok mapping ->
      let bound = Metrics.latency_bound mapping ~throughput in
      let sim = of_option (Stage_latency.latency mapping ~throughput) in
      let crash =
        if config.crashes = 0 then sim
        else
          of_option
            (Stage_latency.mean_crash_latency
               ~rand_int:(fun bound -> Rng.int rng bound)
               ~crashes:config.crashes ~runs:config.crash_draws ~throughput
               mapping)
      in
      (bound, sim, crash, Metrics.meets_throughput mapping ~throughput)

let collect config =
  let throughput = Paper_workload.throughput ~eps:config.eps in
  List.concat_map
    (fun granularity ->
      List.init config.graphs_per_point (fun rep ->
          (* Independent, reproducible stream per (granularity, graph). *)
          let rng =
            Rng.create
              ~seed:
                (config.seed
                + (1_000_003 * rep)
                + int_of_float (granularity *. 1_000.0))
          in
          let inst =
            Paper_workload.instance ~spec:config.spec ~rng ~granularity ()
          in
          let prob =
            Types.problem ~dag:inst.Paper_workload.dag
              ~platform:inst.Paper_workload.plat ~eps:config.eps ~throughput
          in
          let ltf_bound, ltf_sim, ltf_crash, ltf_meets =
            measure_algo config ~throughput ~rng (Ltf.run ~mode:config.mode prob)
          in
          let rltf_bound, rltf_sim, rltf_crash, rltf_meets =
            measure_algo config ~throughput ~rng (Rltf.run ~mode:config.mode prob)
          in
          (* The fault-free reference is an ε = 0 schedule, so its desired
             throughput follows the same rule with ε = 0: T = 1/10. *)
          let ff_throughput = Paper_workload.throughput ~eps:0 in
          let ff_sim =
            match
              Fault_free.run ~mode:config.mode ~dag:inst.Paper_workload.dag
                ~platform:inst.Paper_workload.plat ~throughput:ff_throughput ()
            with
            | Error _ -> nan
            | Ok ff -> of_option (Stage_latency.latency ff ~throughput:ff_throughput)
          in
          {
            granularity;
            ltf_bound;
            ltf_sim;
            ltf_crash;
            ltf_meets;
            rltf_bound;
            rltf_sim;
            rltf_crash;
            rltf_meets;
            ff_sim;
          }))
    config.granularities

let by_granularity samples =
  let table = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let existing = try Hashtbl.find table s.granularity with Not_found -> [] in
      Hashtbl.replace table s.granularity (s :: existing))
    samples;
  Hashtbl.fold (fun g ss acc -> (g, List.rev ss) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mean_series ~label proj samples =
  let points =
    by_granularity samples
    |> List.map (fun (g, ss) ->
           let values =
             List.filter_map
               (fun s ->
                 let v = proj s in
                 if Float.is_nan v then None else Some v)
               ss
           in
           (g, match values with [] -> nan | _ -> Stats.mean values))
  in
  { Ascii_plot.label; points }
