(** The paper's two worked examples, replayed and compared against the
    values printed in the text (§1 Fig. 1, §4.3 Fig. 2). *)

type outcome = {
  what : string;
  paper : string;    (** the value the paper reports *)
  measured : string; (** what this implementation produces *)
}

val fig1 : unit -> outcome list
(** The motivating example: task parallelism (list scheduling), data
    parallelism (all tasks on one processor, replicated round-robin) and
    the two-stage pipelined execution. *)

val fig2 : unit -> outcome list
(** The LTF vs R-LTF worked example (ε = 1, T = 0.05): LTF on 8 and 10
    processors, R-LTF on 8.  Note that the paper's own R-LTF schedule
    carries a computing load of 22 > Δ = 20 on the t6 processor, so the
    strict-mode outcome legitimately differs (see EXPERIMENTS.md). *)

val print : unit -> unit
(** Render both examples as tables. *)
