lib/experiments/fig_baselines.mli: Stats
