lib/experiments/fig_pipeline.mli: Stats
