lib/experiments/fig_overhead.ml: Ascii_plot Fig_common Fig_latency Filename Float Printf
