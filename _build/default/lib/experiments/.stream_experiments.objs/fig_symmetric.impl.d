lib/experiments/fig_symmetric.ml: Ascii_table Csv Filename List Metrics Paper_workload Printf Rltf Rng Stats Symmetric Types
