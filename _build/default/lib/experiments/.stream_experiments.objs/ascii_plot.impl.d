lib/experiments/ascii_plot.ml: Array Buffer Bytes Float List Printf String
