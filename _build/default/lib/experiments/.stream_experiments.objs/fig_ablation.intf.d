lib/experiments/fig_ablation.mli: Scheduler Stats
