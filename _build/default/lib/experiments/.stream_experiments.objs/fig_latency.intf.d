lib/experiments/fig_latency.mli: Ascii_plot Fig_common
