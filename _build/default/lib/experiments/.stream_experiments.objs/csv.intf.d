lib/experiments/csv.mli:
