lib/experiments/fig_common.mli: Ascii_plot Paper_workload Scheduler
