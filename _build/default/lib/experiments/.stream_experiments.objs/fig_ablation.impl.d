lib/experiments/fig_ablation.ml: Ascii_table Csv Filename List Mapping Metrics Paper_workload Printf Rltf Rng Scheduler Stats Types
