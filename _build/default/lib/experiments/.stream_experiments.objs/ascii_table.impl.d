lib/experiments/ascii_table.ml: Array Buffer List String
