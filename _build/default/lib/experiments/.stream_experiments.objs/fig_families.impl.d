lib/experiments/fig_families.ml: Ascii_table Csv Filename Hashtbl List Ltf Metrics Paper_workload Printf Rltf Rng Scheduler Stats Types
