lib/experiments/fig_optgap.mli:
