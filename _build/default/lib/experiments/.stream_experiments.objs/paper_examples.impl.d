lib/experiments/paper_examples.ml: Ascii_table Classic Dag Heft List Ltf Mapping Metrics Platform Printf Replica Rltf Types
