lib/experiments/fig_complexity.ml: Ascii_table Csv Dag Filename List Ltf Paper_workload Printf Rng Scheduler Stats Sys Types
