lib/experiments/fig_symmetric.mli: Stats
