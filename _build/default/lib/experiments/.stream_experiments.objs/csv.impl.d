lib/experiments/csv.ml: Buffer Filename Float Fun List Printf String Sys
