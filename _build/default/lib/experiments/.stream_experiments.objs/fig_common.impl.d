lib/experiments/fig_common.ml: Ascii_plot Fault_free Float Hashtbl List Ltf Metrics Paper_workload Rltf Rng Scheduler Stage_latency Stats Types
