lib/experiments/fig_complexity.mli:
