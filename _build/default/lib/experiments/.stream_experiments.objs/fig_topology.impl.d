lib/experiments/fig_topology.ml: Ascii_table Calibrate Csv Filename Hashtbl List Ltf Mapping Metrics Paper_workload Platform Printf Random_dag Rltf Rng Scheduler Stats Topologies Types
