lib/experiments/runner.mli:
