lib/experiments/paper_examples.mli:
