lib/experiments/fig_cost.ml: Ascii_table Csv Filename List Metrics Paper_workload Platform_cost Printf Rltf Rng Stats Types
