lib/experiments/fig_latency.ml: Ascii_plot Ascii_table Csv Fig_common Filename Float List Printf
