lib/experiments/ascii_table.mli:
