lib/experiments/fig_baselines.ml: Ascii_table Csv Engine Etf Expert Filename Hary Hashtbl Heft Hoang List Ltf Metrics Paper_workload Printf Rltf Rng Scheduler Stats Stdp Tda Types Wmsh
