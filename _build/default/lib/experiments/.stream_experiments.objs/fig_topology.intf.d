lib/experiments/fig_topology.mli: Stats
