lib/experiments/fig_overhead.mli: Ascii_plot Fig_common
