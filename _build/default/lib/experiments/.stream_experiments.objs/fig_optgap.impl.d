lib/experiments/fig_optgap.ml: Ascii_table Calibrate Csv Filename Hary Hashtbl Heft List Ltf Metrics Optimal Platform Printf Random_dag Result Rltf Rng Scheduler Stats Types Wmsh
