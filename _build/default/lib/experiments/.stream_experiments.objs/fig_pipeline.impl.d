lib/experiments/fig_pipeline.ml: Array Ascii_table Csv Engine Filename List Metrics Paper_workload Printf Rltf Rng Scheduler Stage_latency Stats Types
