lib/experiments/fig_families.mli: Stats
