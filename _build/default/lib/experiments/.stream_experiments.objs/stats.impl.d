lib/experiments/stats.ml: Float Format List
