(** Terminal line plots, one glyph per series — a stand-in for the paper's
    gnuplot figures so every experiment is inspectable without a plotting
    toolchain. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y), NaN ys are skipped *)
}

val render :
  ?width:int -> ?height:int ->
  ?x_label:string -> ?y_label:string ->
  title:string -> series list -> string
(** A [width × height] character canvas (default 64 × 20) with axes
    labelled by the data ranges and a legend mapping glyphs to series. *)

val print :
  ?width:int -> ?height:int ->
  ?x_label:string -> ?y_label:string ->
  title:string -> series list -> unit
