(** Extension D: event-driven validation of the analytic throughput.

    The scheduler promises a throughput through the load conditions (1);
    the discrete-event one-port engine checks the promise by streaming a
    window of items through each schedule at the desired period and
    measuring the sustained output rate and the steady-state latency
    (which the stage-synchronous model upper-bounds). *)

type row = {
  granularity : float;
  desired_throughput : float;
  sustained : Stats.summary;      (** measured items/unit time *)
  steady_latency : Stats.summary; (** latency of the last simulated item *)
  stage_model : Stats.summary;    (** (2·S_eff−1)/T for comparison *)
}

val run :
  ?out_dir:string ->
  ?seed:int ->
  ?graphs:int ->
  ?items:int ->
  ?eps:int ->
  unit ->
  row list
(** Defaults: 10 graphs per granularity in {0.4, 1.0, 1.6}, 30 items,
    ε = 1.  Prints a table and writes [fig-pipeline.csv]. *)
