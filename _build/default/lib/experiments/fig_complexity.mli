(** Empirical check of Theorem 1: LTF runs in
    O(e·m·(ε+1)²·log(ε+1) + v·log ω).

    Sweeps the task count (with m, ε fixed) and the processor count (with
    v, ε fixed), timing LTF and reporting the measured growth rate against
    the bound's prediction (linear in e and in m). *)

type point = {
  v : int;
  e : int;
  m : int;
  eps : int;
  seconds : float;  (** median CPU time of the repetitions *)
}

val run :
  ?out_dir:string -> ?seed:int -> ?repetitions:int -> unit -> point list
(** Prints the scaling tables and writes [fig-complexity.csv]. *)
