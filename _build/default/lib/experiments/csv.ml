let escape field =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) field
  in
  if not needs_quoting then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let write ~path ~header rows =
  ensure_dir (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let put row =
        output_string oc (String.concat "," (List.map escape row));
        output_char oc '\n'
      in
      put header;
      List.iter put rows)

let write_floats ~path ~header rows =
  let render v = if Float.is_nan v then "" else Printf.sprintf "%.6g" v in
  write ~path ~header (List.map (List.map render) rows)
