(** Structured platform topologies.

    The paper's experiments draw every link bandwidth independently; real
    deployments have structure.  These constructors build the common
    shapes used in the topology-sensitivity experiment (Extension G) and
    by library users modelling actual clusters.  All of them remain fully
    connected (the one-port model needs no routing), the topology lives in
    the bandwidth matrix. *)

val clustered :
  ?name:string ->
  clusters:int ->
  per_cluster:int ->
  speed:float ->
  intra_bandwidth:float ->
  inter_bandwidth:float ->
  unit ->
  Platform.t
(** [clusters × per_cluster] processors of the given speed; links inside a
    cluster run at [intra_bandwidth], links between clusters at
    [inter_bandwidth].  Processor [i] belongs to cluster [i / per_cluster]. *)

val star :
  ?name:string ->
  m:int ->
  speed:float ->
  hub_bandwidth:float ->
  leaf_bandwidth:float ->
  unit ->
  Platform.t
(** Processor 0 is the hub: its links run at [hub_bandwidth]; leaf-to-leaf
    links (logically routed through the hub) at [leaf_bandwidth]. *)

val heterogeneous_speeds :
  ?name:string ->
  speeds:float array ->
  bandwidth:float ->
  unit ->
  Platform.t
(** Uniform links with the given per-processor speeds — the classic
    "related machines" model. *)

val cluster_of : per_cluster:int -> Platform.proc -> int
(** The cluster index of a processor under {!clustered}'s numbering. *)
