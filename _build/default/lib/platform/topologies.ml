let cluster_of ~per_cluster p = p / per_cluster

let clustered ?(name = "clustered") ~clusters ~per_cluster ~speed
    ~intra_bandwidth ~inter_bandwidth () =
  if clusters < 1 || per_cluster < 1 then
    invalid_arg "Topologies.clustered: empty shape";
  let m = clusters * per_cluster in
  let bw =
    Array.init m (fun i ->
        Array.init m (fun j ->
            if i = j then 0.0
            else if cluster_of ~per_cluster i = cluster_of ~per_cluster j then
              intra_bandwidth
            else inter_bandwidth))
  in
  Platform.create ~name ~speeds:(Array.make m speed) ~bandwidth:bw ()

let star ?(name = "star") ~m ~speed ~hub_bandwidth ~leaf_bandwidth () =
  if m < 1 then invalid_arg "Topologies.star: no processors";
  let bw =
    Array.init m (fun i ->
        Array.init m (fun j ->
            if i = j then 0.0
            else if i = 0 || j = 0 then hub_bandwidth
            else leaf_bandwidth))
  in
  Platform.create ~name ~speeds:(Array.make m speed) ~bandwidth:bw ()

let heterogeneous_speeds ?(name = "related-machines") ~speeds ~bandwidth () =
  let m = Array.length speeds in
  Platform.create ~name ~speeds ~bandwidth:(Array.make_matrix m m bandwidth) ()
