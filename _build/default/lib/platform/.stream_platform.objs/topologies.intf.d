lib/platform/topologies.mli: Platform
