lib/platform/platform.ml: Array Float Format Fun List Printf
