lib/platform/topologies.ml: Array Platform
