test/support/fixtures.ml: Alcotest Classic Dag List Ltf Paper_workload Platform Rltf Rng String Types Validate
