open Test_support

let case = Fixtures.case
let check_float = Fixtures.check_float
let check_int = Fixtures.check_int
let check_true = Fixtures.check_true

let rejects name f =
  case name (fun () ->
      Alcotest.check_raises name (Invalid_argument "") (fun () ->
          try f () with Invalid_argument _ -> raise (Invalid_argument "")))

let construction_tests =
  [
    case "homogeneous accessors" (fun () ->
        let p = Fixtures.uniform 4 in
        check_int "size" 4 (Platform.size p);
        check_float "speed" 1.0 (Platform.speed p 2);
        check_float "bandwidth" 1.0 (Platform.bandwidth p 0 3);
        Alcotest.(check (list int)) "procs" [ 0; 1; 2; 3 ] (Platform.procs p));
    case "heterogeneous accessors" (fun () ->
        let p = Fixtures.hetero4 in
        check_float "speed" 0.5 (Platform.speed p 2);
        check_float "bandwidth symmetric" (Platform.bandwidth p 1 3)
          (Platform.bandwidth p 3 1));
    rejects "empty platform" (fun () ->
        ignore (Platform.create ~speeds:[||] ~bandwidth:[||] ()));
    rejects "non-positive speed" (fun () ->
        ignore
          (Platform.create ~speeds:[| 1.0; 0.0 |]
             ~bandwidth:(Array.make_matrix 2 2 1.0)
             ()));
    rejects "wrong matrix shape" (fun () ->
        ignore
          (Platform.create ~speeds:[| 1.0; 1.0 |]
             ~bandwidth:(Array.make_matrix 3 3 1.0)
             ()));
    rejects "asymmetric bandwidth" (fun () ->
        let bw = Array.make_matrix 2 2 1.0 in
        bw.(0).(1) <- 2.0;
        ignore (Platform.create ~speeds:[| 1.0; 1.0 |] ~bandwidth:bw ()));
    rejects "non-positive bandwidth" (fun () ->
        let bw = Array.make_matrix 2 2 0.0 in
        ignore (Platform.create ~speeds:[| 1.0; 1.0 |] ~bandwidth:bw ()));
    case "diagonal of the bandwidth matrix is ignored" (fun () ->
        let bw = Array.make_matrix 2 2 1.0 in
        bw.(0).(0) <- 0.0;
        bw.(1).(1) <- -5.0;
        let p = Platform.create ~speeds:[| 1.0; 1.0 |] ~bandwidth:bw () in
        check_int "built fine" 2 (Platform.size p));
    rejects "bandwidth on the same processor" (fun () ->
        ignore (Platform.bandwidth (Fixtures.uniform 2) 1 1));
  ]

let timing_tests =
  [
    case "exec time scales with speed" (fun () ->
        let p = Fixtures.hetero4 in
        check_float "fast" 5.0 (Platform.exec_time p 0 10.0);
        check_float "slow" 20.0 (Platform.exec_time p 2 10.0));
    case "comm time scales with bandwidth" (fun () ->
        let p = Fixtures.hetero4 in
        check_float "fast link" 2.5 (Platform.comm_time p 0 1 10.0);
        check_float "slow link" 10.0 (Platform.comm_time p 0 2 10.0));
    case "local comm is free" (fun () ->
        check_float "zero" 0.0 (Platform.comm_time Fixtures.hetero4 1 1 42.0);
        check_float "unit delay" 0.0 (Platform.unit_delay Fixtures.hetero4 1 1));
    case "unit delay is the inverse bandwidth" (fun () ->
        check_float "delay" 0.25 (Platform.unit_delay Fixtures.hetero4 0 1));
  ]

let aggregate_tests =
  [
    case "mean inverse speed" (fun () ->
        (* speeds 2, 1, 0.5, 1 -> inverses 0.5, 1, 2, 1 -> mean 1.125 *)
        check_float "mean" 1.125 (Platform.mean_inverse_speed Fixtures.hetero4));
    case "mean unit delay of a homogeneous platform" (fun () ->
        check_float "mean" 1.0 (Platform.mean_unit_delay (Fixtures.uniform 3)));
    case "mean unit delay of a single processor" (fun () ->
        check_float "no links" 0.0 (Platform.mean_unit_delay (Fixtures.uniform 1)));
    case "slowest exec time uses the slowest processor" (fun () ->
        check_float "slowest" 20.0 (Platform.slowest_exec_time Fixtures.hetero4 10.0));
    case "slowest comm time uses the slowest link" (fun () ->
        check_float "slowest" 10.0 (Platform.slowest_comm_time Fixtures.hetero4 10.0));
    case "slowest comm time of one processor is zero" (fun () ->
        check_float "zero" 0.0 (Platform.slowest_comm_time (Fixtures.uniform 1) 10.0));
    case "fastest processor" (fun () ->
        check_int "fastest" 0 (Platform.fastest_proc Fixtures.hetero4);
        check_int "first among ties" 0 (Platform.fastest_proc (Fixtures.uniform 5)));
    case "granularity of fig2 example" (fun () ->
        (* 72 work units over 9 edges of volume 2 on a unit platform *)
        let g = Classic.fig2_graph and p = Classic.fig2_platform ~m:8 in
        check_float "granularity" (72.0 /. 18.0) (Metrics.granularity g p));
    case "granularity with no edges is infinite" (fun () ->
        check_true "inf"
          (Metrics.granularity Fixtures.singleton (Fixtures.uniform 2) = infinity));
  ]

let topology_tests =
  [
    case "clustered bandwidths follow the cluster structure" (fun () ->
        let p =
          Topologies.clustered ~clusters:2 ~per_cluster:3 ~speed:1.0
            ~intra_bandwidth:4.0 ~inter_bandwidth:0.5 ()
        in
        check_int "size" 6 (Platform.size p);
        check_float "intra" 4.0 (Platform.bandwidth p 0 2);
        check_float "inter" 0.5 (Platform.bandwidth p 0 3);
        check_int "cluster index" 1 (Topologies.cluster_of ~per_cluster:3 4));
    case "star hub links are fast" (fun () ->
        let p =
          Topologies.star ~m:5 ~speed:1.0 ~hub_bandwidth:8.0 ~leaf_bandwidth:1.0 ()
        in
        check_float "hub" 8.0 (Platform.bandwidth p 0 4);
        check_float "leaf" 1.0 (Platform.bandwidth p 2 4));
    case "related machines" (fun () ->
        let p =
          Topologies.heterogeneous_speeds ~speeds:[| 2.0; 1.0 |] ~bandwidth:3.0 ()
        in
        check_float "speed" 2.0 (Platform.speed p 0);
        check_float "bw" 3.0 (Platform.bandwidth p 0 1));
    case "empty shapes are rejected" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "") (fun () ->
            try
              ignore
                (Topologies.clustered ~clusters:0 ~per_cluster:2 ~speed:1.0
                   ~intra_bandwidth:1.0 ~inter_bandwidth:1.0 ())
            with Invalid_argument _ -> raise (Invalid_argument "")));
  ]

let () =
  Alcotest.run "stream_platform"
    [
      ("construction", construction_tests);
      ("timing", timing_tests);
      ("aggregate", aggregate_tests);
      ("topologies", topology_tests);
    ]
