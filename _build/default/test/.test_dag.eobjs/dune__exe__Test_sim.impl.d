test/test_sim.ml: Alcotest Array Classic Crash Dag Engine Event_heap Fixtures List Mapping Metrics Option Replica Rng Stage_latency Test_support
