test/test_baselines.ml: Alcotest Array Assignment Classic Clustering Dag Etf Expert Fixtures Hary Heft Hoang List Mapping Platform Stdp Tda Test_support Validate Wmsh
