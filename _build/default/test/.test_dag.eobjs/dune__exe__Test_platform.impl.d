test/test_platform.ml: Alcotest Array Classic Fixtures Metrics Platform Test_support Topologies
