test/test_dag.ml: Alcotest Array Dag Dot Fixtures Levels List Paths Printf Random_dag Rng Sp String Test_support Topo Width
