test/test_io.ml: Alcotest Classic Dag Engine Filename Fixtures List Mapping Mapping_io Metrics Platform Replica String Svg_gantt Sys Test_support Trace Types Workflow_io
