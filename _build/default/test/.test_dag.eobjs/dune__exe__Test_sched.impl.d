test/test_sched.ml: Alcotest Array Fixtures Gantt List Loads Mapping Metrics Platform Replica Stages String Test_support Timeline Validate
