test/test_workload.ml: Alcotest Array Calibrate Classic Dag Fixtures Fun List Metrics Paper_workload Platform Random_dag Rng Sp Test_support Topo Types Width
