open Test_support

let case = Fixtures.case
let check_int = Fixtures.check_int
let check_float = Fixtures.check_float
let check_true = Fixtures.check_true

let plat4 = Fixtures.uniform 4

(* ------------------------------------------------------------------ *)
(* Assignment plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let assignment_tests =
  [
    case "loads of a round-robin assignment" (fun () ->
        let a = [| 0; 1; 0 |] in
        let loads = Assignment.loads Fixtures.chain3 plat4 a in
        check_float "P0" 2.0 loads.(0);
        check_float "P1" 1.0 loads.(1);
        check_float "max" 2.0 (Assignment.max_load Fixtures.chain3 plat4 a));
    case "comm volume counts only crossings" (fun () ->
        check_float "all local" 0.0
          (Assignment.comm_volume Fixtures.chain3 [| 0; 0; 0 |]);
        check_float "all crossing" 2.0
          (Assignment.comm_volume Fixtures.chain3 [| 0; 1; 0 |]));
    case "to_mapping builds a valid single-copy mapping" (fun () ->
        let m = Assignment.to_mapping Fixtures.diamond4 plat4 [| 0; 1; 0; 1 |] in
        check_true "complete" (Mapping.is_complete m);
        check_int "eps" 0 (Mapping.eps m);
        Fixtures.check_tolerant m);
    case "validate rejects bad processors" (fun () ->
        Alcotest.check_raises "oob" (Invalid_argument "") (fun () ->
            try Assignment.validate Fixtures.chain3 plat4 [| 0; 9; 0 |]
            with Invalid_argument _ -> raise (Invalid_argument "")));
  ]

(* ------------------------------------------------------------------ *)
(* Clustering                                                          *)
(* ------------------------------------------------------------------ *)

let clustering_tests =
  [
    case "singletons at creation" (fun () ->
        let c = Clustering.create Fixtures.fork3 in
        check_int "clusters" (Dag.size Fixtures.fork3) (Clustering.n_clusters c);
        check_float "load is the task weight" 1.0 (Clustering.load c 0));
    case "merge accumulates load" (fun () ->
        let c = Clustering.create Fixtures.chain3 in
        Clustering.merge c 0 1;
        check_true "same" (Clustering.same c 0 1);
        check_float "combined" 2.0 (Clustering.load c 0);
        check_int "clusters" 2 (Clustering.n_clusters c));
    case "merge_if respects the cap" (fun () ->
        let c = Clustering.create Fixtures.chain3 in
        check_true "fits" (Clustering.merge_if c ~max_load:2.0 0 1);
        check_true "exceeds" (not (Clustering.merge_if c ~max_load:2.5 0 2));
        check_true "already together counts as success"
          (Clustering.merge_if c ~max_load:0.0 0 1));
    case "members partition the tasks" (fun () ->
        let c = Clustering.create Fixtures.fork3 in
        Clustering.merge c 0 4;
        Clustering.merge c 1 2;
        let groups = Clustering.members c in
        let total = Array.fold_left (fun acc g -> acc + List.length g) 0 groups in
        check_int "every task once" (Dag.size Fixtures.fork3) total);
    case "cut volume" (fun () ->
        let c = Clustering.create Fixtures.chain3 in
        check_float "everything cut" 2.0 (Clustering.cut_volume c);
        Clustering.merge c 0 1;
        Clustering.merge c 1 2;
        check_float "nothing cut" 0.0 (Clustering.cut_volume c));
    case "to_assignment respects clusters" (fun () ->
        let c = Clustering.create Fixtures.chain3 in
        Clustering.merge c 0 2;
        let a = Clustering.to_assignment c plat4 in
        check_int "clustered together" a.(0) a.(2));
    case "heavy clusters go to fast processors" (fun () ->
        let c = Clustering.create Fixtures.chain3 in
        Clustering.merge c 0 1;
        Clustering.merge c 1 2;
        let a = Clustering.to_assignment c Fixtures.hetero4 in
        check_int "fastest processor" (Platform.fastest_proc Fixtures.hetero4) a.(0));
  ]

(* ------------------------------------------------------------------ *)
(* The individual heuristics                                           *)
(* ------------------------------------------------------------------ *)

let all_baseline_mappings dag plat ~throughput =
  [
    ("HEFT", Heft.mapping ~throughput dag plat);
    ("ETF", Etf.mapping ~throughput dag plat);
    ("Hary", Hary.mapping dag plat ~throughput);
    ("EXPERT", Expert.mapping dag plat ~throughput);
    ("TDA", Tda.mapping dag plat ~throughput);
    ("STDP", Stdp.mapping dag plat ~throughput);
    ("WMSH", Wmsh.mapping dag plat ~throughput);
    ("Hoang", Hoang.mapping ~iterations:15 dag plat);
  ]

let heuristics_tests =
  [
    case "HEFT dominates the serial schedule" (fun () ->
        let s = Heft.run Fixtures.gauss5 Fixtures.hetero4 in
        let serial =
          Platform.exec_time Fixtures.hetero4
            (Platform.fastest_proc Fixtures.hetero4)
            (Dag.total_exec Fixtures.gauss5)
        in
        check_true "parallel <= serial" (s.Heft.makespan <= serial +. 1e-9));
    case "HEFT respects dependencies" (fun () ->
        let s = Heft.run Fixtures.gauss5 Fixtures.hetero4 in
        Dag.iter_edges Fixtures.gauss5 (fun src dst _ ->
            check_true "pred finishes first"
              (s.Heft.finish.(src) <= s.Heft.start.(dst) +. 1e-9)));
    case "HEFT makespan bounds every finish" (fun () ->
        let s = Heft.run Fixtures.fft8 plat4 in
        Array.iter (fun f -> check_true "bounded" (f <= s.Heft.makespan +. 1e-9))
          s.Heft.finish);
    case "ETF respects dependencies and processors" (fun () ->
        let s = Etf.run Fixtures.fft8 Fixtures.hetero4 in
        Dag.iter_edges Fixtures.fft8 (fun src dst _ ->
            check_true "pred first" (s.Etf.finish.(src) <= s.Etf.start.(dst) +. 1e-9));
        (* one task at a time per processor *)
        Dag.iter_tasks Fixtures.fft8 (fun a ->
            Dag.iter_tasks Fixtures.fft8 (fun b ->
                if a < b && s.Etf.assignment.(a) = s.Etf.assignment.(b) then
                  check_true "no overlap"
                    (s.Etf.finish.(a) <= s.Etf.start.(b) +. 1e-9
                    || s.Etf.finish.(b) <= s.Etf.start.(a) +. 1e-9))));
    case "ETF on the fig1 example matches the paper's ballpark" (fun () ->
        let s = Etf.run Classic.fig1_graph Classic.fig1_platform in
        (* the paper's list schedule reaches 39; ETF greedily minimizes
           start times (not finish times), which costs a little here, but
           it must beat the serial time of a slow processor (60) *)
        check_true "above the critical path" (s.Etf.makespan >= 30.0 -. 1e-9);
        check_true "reasonable makespan" (s.Etf.makespan <= 60.0 +. 1e-9));
    case "Hary keeps clusters within the period" (fun () ->
        let throughput = 0.25 in
        let a = Hary.run Fixtures.gauss5 plat4 ~throughput in
        let loads = Assignment.loads Fixtures.gauss5 plat4 a in
        Array.iter
          (fun l -> check_true "within cap" (l <= (1.0 /. throughput) +. 1e-9))
          loads);
    case "Hary merges the heaviest edge when it fits" (fun () ->
        let dag =
          Dag.of_edges ~name:"weighted" ~exec:[| 1.0; 1.0; 1.0 |]
            [ (0, 1, 10.0); (1, 2, 0.1) ]
        in
        let a = Hary.run dag plat4 ~throughput:0.5 in
        check_int "heavy edge zeroed" a.(0) a.(1));
    case "EXPERT covers every task" (fun () ->
        let a = Expert.run Fixtures.fft8 plat4 ~throughput:0.2 in
        check_int "length" (Dag.size Fixtures.fft8) (Array.length a);
        Assignment.validate Fixtures.fft8 plat4 a);
    case "EXPERT groups chain prefixes" (fun () ->
        let a = Expert.run Fixtures.chain5 plat4 ~throughput:0.2 in
        (* chain tasks of weight 2 and cap 5: at least the first two share *)
        check_int "prefix grouped" a.(0) a.(1));
    case "TDA produces stages that respect precedence" (fun () ->
        let r = Tda.run Fixtures.gauss5 plat4 ~throughput:0.3 in
        Dag.iter_edges Fixtures.gauss5 (fun src dst _ ->
            check_true "monotone stages" (r.Tda.stage_of.(src) <= r.Tda.stage_of.(dst)));
        check_true "stage count" (r.Tda.n_stages >= 1);
        check_true "procs used" (r.Tda.procs_used >= 1 && r.Tda.procs_used <= 4));
    case "STDP earliest/latest bracket every task" (fun () ->
        let r = Stdp.run Fixtures.gauss5 plat4 ~throughput:0.3 in
        Array.iteri
          (fun t e -> check_true "e <= l" (e <= r.Stdp.latest.(t) +. 1e-9))
          r.Stdp.earliest);
    case "WMSH returns a valid assignment" (fun () ->
        let a = Wmsh.run Fixtures.fft8 plat4 ~throughput:0.2 in
        Assignment.validate Fixtures.fft8 plat4 a);
    case "Hoang period is bracketed by the trivial bounds" (fun () ->
        let r = Hoang.run ~iterations:25 Fixtures.gauss5 Fixtures.hetero4 in
        let lo =
          Dag.total_exec Fixtures.gauss5
          /. List.fold_left
               (fun acc u -> acc +. Platform.speed Fixtures.hetero4 u)
               0.0
               (Platform.procs Fixtures.hetero4)
        in
        let hi =
          Platform.exec_time Fixtures.hetero4
            (Platform.fastest_proc Fixtures.hetero4)
            (Dag.total_exec Fixtures.gauss5)
        in
        check_true "above the work bound" (r.Hoang.period >= lo -. 1e-9);
        check_true "below the serial bound" (r.Hoang.period <= hi +. 1e-9);
        check_true "probes counted" (r.Hoang.probes > 0));
    case "Hoang assignment meets its own period" (fun () ->
        let r = Hoang.run ~iterations:25 Fixtures.gauss5 plat4 in
        let loads = Assignment.loads Fixtures.gauss5 plat4 r.Hoang.assignment in
        Array.iter
          (fun l -> check_true "load within period" (l <= r.Hoang.period +. 1e-6))
          loads);
    case "every baseline yields a structurally valid mapping" (fun () ->
        List.iter
          (fun (name, m) ->
            check_true (name ^ " complete") (Mapping.is_complete m);
            match Validate.structure m with
            | [] -> ()
            | e :: _ ->
                Alcotest.failf "%s: %s" name (Validate.error_to_string e))
          (all_baseline_mappings Fixtures.gauss5 Fixtures.hetero4 ~throughput:0.2));
    case "baselines also handle single-task graphs" (fun () ->
        List.iter
          (fun (name, m) ->
            check_true (name ^ " complete") (Mapping.is_complete m))
          (all_baseline_mappings Fixtures.singleton plat4 ~throughput:0.5));
  ]

let () =
  Alcotest.run "stream_baselines"
    [
      ("assignment", assignment_tests);
      ("clustering", clustering_tests);
      ("heuristics", heuristics_tests);
    ]
