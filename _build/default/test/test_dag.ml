open Test_support

let check_float = Fixtures.check_float
let check_int = Fixtures.check_int
let check_true = Fixtures.check_true
let case = Fixtures.case

(* ------------------------------------------------------------------ *)
(* Builder and accessors                                               *)
(* ------------------------------------------------------------------ *)

let builder_rejects name f =
  case name (fun () ->
      Alcotest.check_raises name (Invalid_argument "") (fun () ->
          try f () with Invalid_argument _ -> raise (Invalid_argument "")))

let builder_tests =
  [
    case "empty graph" (fun () ->
        check_int "size" 0 (Dag.size Fixtures.empty);
        check_int "edges" 0 (Dag.n_edges Fixtures.empty);
        Alcotest.(check (list int)) "entries" [] (Dag.entries Fixtures.empty));
    case "singleton graph" (fun () ->
        let g = Fixtures.singleton in
        check_int "size" 1 (Dag.size g);
        Alcotest.(check (list int)) "entries" [ 0 ] (Dag.entries g);
        Alcotest.(check (list int)) "exits" [ 0 ] (Dag.exits g);
        check_float "exec defaults to 1" 1.0 (Dag.exec g 0));
    case "chain structure" (fun () ->
        let g = Fixtures.chain3 in
        check_int "edges" 2 (Dag.n_edges g);
        Alcotest.(check (list int)) "entries" [ 0 ] (Dag.entries g);
        Alcotest.(check (list int)) "exits" [ 2 ] (Dag.exits g);
        check_int "out degree" 1 (Dag.out_degree g 0);
        check_int "in degree" 1 (Dag.in_degree g 1);
        check_true "has edge" (Dag.has_edge g 0 1);
        check_true "no reverse edge" (not (Dag.has_edge g 1 0)));
    case "volume lookup" (fun () ->
        check_float "volume" 2.0 (Dag.volume Fixtures.diamond4 0 1);
        Alcotest.check_raises "missing edge" Not_found (fun () ->
            ignore (Dag.volume Fixtures.diamond4 1 2)));
    case "labels" (fun () ->
        Alcotest.(check string) "default label" "t1" (Dag.label Fixtures.diamond4 0));
    builder_rejects "negative size" (fun () ->
        ignore (Dag.Builder.create (-1)));
    builder_rejects "self loop" (fun () ->
        let b = Dag.Builder.create 2 in
        Dag.Builder.add_edge b 1 1);
    builder_rejects "duplicate edge" (fun () ->
        let b = Dag.Builder.create 2 in
        Dag.Builder.add_edge b 0 1;
        Dag.Builder.add_edge b 0 1);
    builder_rejects "zero volume" (fun () ->
        let b = Dag.Builder.create 2 in
        Dag.Builder.add_edge b ~volume:0.0 0 1);
    builder_rejects "non-positive exec" (fun () ->
        let b = Dag.Builder.create 1 in
        Dag.Builder.set_exec b 0 0.0);
    builder_rejects "out of range task" (fun () ->
        let b = Dag.Builder.create 2 in
        Dag.Builder.add_edge b 0 2);
    builder_rejects "cycle" (fun () ->
        let b = Dag.Builder.create 3 in
        Dag.Builder.add_edge b 0 1;
        Dag.Builder.add_edge b 1 2;
        Dag.Builder.add_edge b 2 0;
        ignore (Dag.Builder.build b));
    case "of_edges round trip" (fun () ->
        let g = Dag.of_edges ~exec:[| 1.0; 2.0 |] [ (0, 1, 3.0) ] in
        check_float "exec" 2.0 (Dag.exec g 1);
        check_float "volume" 3.0 (Dag.volume g 0 1));
    case "totals" (fun () ->
        check_float "total exec" 60.0 (Dag.total_exec Fixtures.diamond4);
        check_float "total volume" 8.0 (Dag.total_volume Fixtures.diamond4));
    case "fold edges matches iter" (fun () ->
        let count = ref 0 in
        Dag.iter_edges Fixtures.fft8 (fun _ _ _ -> incr count);
        let folded =
          Dag.fold_edges Fixtures.fft8 ~init:0 ~f:(fun acc _ _ _ -> acc + 1)
        in
        check_int "edge counts" !count folded);
  ]

(* ------------------------------------------------------------------ *)
(* Transformations                                                     *)
(* ------------------------------------------------------------------ *)

let transform_tests =
  [
    case "reverse swaps directions" (fun () ->
        let g = Fixtures.chain3 in
        let r = Dag.reverse g in
        check_true "edge reversed" (Dag.has_edge r 1 0);
        Alcotest.(check (list int)) "entries become exits" (Dag.exits g) (Dag.entries r);
        check_int "edge count preserved" (Dag.n_edges g) (Dag.n_edges r));
    case "reverse preserves weights" (fun () ->
        let r = Dag.reverse Fixtures.diamond4 in
        check_float "exec" (Dag.exec Fixtures.diamond4 1) (Dag.exec r 1);
        check_float "volume" (Dag.volume Fixtures.diamond4 0 1) (Dag.volume r 1 0));
    case "double reverse is identity" (fun () ->
        let g = Fixtures.fft8 in
        let rr = Dag.reverse (Dag.reverse g) in
        Dag.iter_edges g (fun s d v ->
            check_float "same volume" v (Dag.volume rr s d)));
    case "map_weights scales exec" (fun () ->
        let g = Dag.map_weights ~exec:(fun _ w -> 2.0 *. w) Fixtures.chain3 in
        check_float "doubled" 2.0 (Dag.exec g 0);
        check_float "volume untouched" 1.0 (Dag.volume g 0 1));
    case "map_weights scales volumes consistently" (fun () ->
        let g =
          Dag.map_weights ~volume:(fun _ _ v -> 3.0 *. v) Fixtures.diamond4
        in
        Dag.iter_edges g (fun s d v ->
            check_float "succs and preds agree" v
              (List.assoc s (Dag.preds g d))));
  ]

(* ------------------------------------------------------------------ *)
(* Topological machinery                                               *)
(* ------------------------------------------------------------------ *)

let is_topological g order =
  let position = Array.make (Dag.size g) (-1) in
  Array.iteri (fun i t -> position.(t) <- i) order;
  Array.for_all (fun p -> p >= 0) position
  && Dag.fold_edges g ~init:true ~f:(fun acc s d _ ->
         acc && position.(s) < position.(d))

let topo_tests =
  [
    case "order is topological (fft)" (fun () ->
        check_true "topological" (is_topological Fixtures.fft8 (Topo.order Fixtures.fft8)));
    case "order is topological (gauss)" (fun () ->
        check_true "topological"
          (is_topological Fixtures.gauss5 (Topo.order Fixtures.gauss5)));
    case "reverse order reverses dependencies" (fun () ->
        let g = Fixtures.fft8 in
        let order = Topo.reverse_order g in
        check_true "anti-topological"
          (is_topological (Dag.reverse g) order));
    case "depth of chain" (fun () ->
        Alcotest.(check (array int)) "depths" [| 0; 1; 2 |] (Topo.depth Fixtures.chain3));
    case "height mirrors depth on chain" (fun () ->
        Alcotest.(check (array int)) "heights" [| 2; 1; 0 |] (Topo.height Fixtures.chain3));
    case "layers partition tasks" (fun () ->
        let layers = Topo.layers Fixtures.fft8 in
        let total = Array.fold_left (fun acc l -> acc + List.length l) 0 layers in
        check_int "all tasks in layers" (Dag.size Fixtures.fft8) total;
        check_int "fft has p+1 layers" 4 (Array.length layers));
    case "layers of empty graph" (fun () ->
        check_int "no layers" 0 (Array.length (Topo.layers Fixtures.empty)));
    case "reachability on diamond" (fun () ->
        let r = Topo.reachable Fixtures.diamond4 0 in
        Alcotest.(check (array bool)) "reaches all" [| false; true; true; true |] r);
    case "reachability from exit" (fun () ->
        let r = Topo.reachable Fixtures.diamond4 3 in
        check_true "reaches nothing" (Array.for_all not r));
    case "transitive closure matches reachability" (fun () ->
        let g = Fixtures.gauss5 in
        let closure = Topo.transitive_closure g in
        Dag.iter_tasks g (fun t ->
            let reach = Topo.reachable g t in
            Dag.iter_tasks g (fun u ->
                Fixtures.check_bool
                  (Printf.sprintf "closure %d->%d" t u)
                  reach.(u) closure.(t).(u))));
    case "independence" (fun () ->
        check_true "parallel branches" (Topo.independent Fixtures.diamond4 1 2);
        check_true "dependent pair" (not (Topo.independent Fixtures.diamond4 0 3));
        check_true "task not independent of itself"
          (not (Topo.independent Fixtures.diamond4 1 1)));
  ]

(* ------------------------------------------------------------------ *)
(* Levels and priorities                                               *)
(* ------------------------------------------------------------------ *)

let levels_tests =
  let w = Levels.exec_weights Fixtures.diamond4 in
  [
    case "top levels on diamond" (fun () ->
        let tl = Levels.top Fixtures.diamond4 w in
        check_float "entry" 0.0 tl.(0);
        check_float "middle" 17.0 tl.(1);
        check_float "exit" 34.0 tl.(3));
    case "bottom levels on diamond" (fun () ->
        let bl = Levels.bottom Fixtures.diamond4 w in
        check_float "exit" 15.0 bl.(3);
        check_float "middle" 32.0 bl.(1);
        check_float "entry" 49.0 bl.(0));
    case "priority is constant on the critical path" (fun () ->
        let p = Levels.priority Fixtures.diamond4 w in
        check_float "entry = middle" p.(0) p.(1);
        check_float "middle = exit" p.(1) p.(3));
    case "critical path length" (fun () ->
        check_float "cp" 49.0 (Levels.critical_path_length Fixtures.diamond4 w));
    case "critical path length of empty graph" (fun () ->
        check_float "cp" 0.0 (Levels.critical_path_length Fixtures.empty w));
    case "unit weights count hops" (fun () ->
        let bl = Levels.bottom Fixtures.chain3 Levels.unit_weights in
        (* node weight 1, edge weight = volume 1: 1+1+1+1+1 = 5 *)
        check_float "entry bottom level" 5.0 bl.(0));
    case "top level of entries is zero on every graph" (fun () ->
        List.iter
          (fun g ->
            let tl = Levels.top g (Levels.exec_weights g) in
            List.iter (fun t -> check_float "entry tl" 0.0 tl.(t)) (Dag.entries g))
          [ Fixtures.fft8; Fixtures.gauss5; Fixtures.stencil33 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Width                                                               *)
(* ------------------------------------------------------------------ *)

let pairwise_independent g tasks =
  let rec check = function
    | [] -> true
    | t :: rest ->
        List.for_all (fun u -> Topo.independent g t u) rest && check rest
  in
  check tasks

let width_tests =
  [
    case "chain has width 1" (fun () ->
        check_int "width" 1 (Width.exact Fixtures.chain5));
    case "fork-join width equals its fan" (fun () ->
        check_int "width" 3 (Width.exact Fixtures.fork3));
    case "fft width equals the row count" (fun () ->
        check_int "width" 8 (Width.exact Fixtures.fft8));
    case "layer bound is a lower bound" (fun () ->
        List.iter
          (fun g ->
            check_true "bound <= exact" (Width.layer_lower_bound g <= Width.exact g))
          [ Fixtures.chain5; Fixtures.fork3; Fixtures.gauss5; Fixtures.stencil33 ]);
    case "antichain witness is valid and maximal" (fun () ->
        List.iter
          (fun g ->
            let a = Width.antichain g in
            check_int "witness size" (Width.exact g) (List.length a);
            check_true "pairwise independent" (pairwise_independent g a))
          [ Fixtures.chain5; Fixtures.fork3; Fixtures.fft8; Fixtures.gauss5 ]);
    case "stencil width" (fun () ->
        (* anti-diagonal of a 3x3 wavefront *)
        check_int "width" 3 (Width.exact Fixtures.stencil33));
  ]

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let paths_tests =
  let w g = Levels.exec_weights g in
  [
    case "critical path of a chain is the chain" (fun () ->
        Alcotest.(check (list int)) "path" [ 0; 1; 2 ]
          (Paths.critical_path Fixtures.chain3 (w Fixtures.chain3)));
    case "critical path of the empty graph" (fun () ->
        Alcotest.(check (list int)) "path" []
          (Paths.critical_path Fixtures.empty (w Fixtures.empty)));
    case "critical path realizes the critical length" (fun () ->
        let g = Fixtures.gauss5 in
        let weights = w g in
        let path = Paths.critical_path g weights in
        let length =
          let rec total = function
            | [] -> 0.0
            | [ t ] -> Dag.exec g t
            | a :: (b :: _ as rest) -> Dag.exec g a +. Dag.volume g a b +. total rest
          in
          total path
        in
        check_float "length" (Levels.critical_path_length g weights) length);
    case "path counts" (fun () ->
        check_int "chain" 1 (Paths.count_paths Fixtures.chain5);
        check_int "diamond" 2 (Paths.count_paths Fixtures.diamond4);
        check_int "fork-join" 3 (Paths.count_paths Fixtures.fork3);
        check_int "empty" 0 (Paths.count_paths Fixtures.empty));
    case "all_paths enumerates exactly count_paths" (fun () ->
        List.iter
          (fun g ->
            check_int
              (Printf.sprintf "paths of %s" (Dag.name g))
              (Paths.count_paths g)
              (List.length (Paths.all_paths g)))
          [ Fixtures.chain3; Fixtures.diamond4; Fixtures.fork3; Fixtures.gauss5 ]);
    case "all_paths respects the limit" (fun () ->
        check_int "limit" 5 (List.length (Paths.all_paths ~limit:5 Fixtures.fft8)));
    case "every enumerated path is a real path" (fun () ->
        let g = Fixtures.gauss5 in
        List.iter
          (fun path ->
            let rec ok = function
              | [] | [ _ ] -> true
              | a :: (b :: _ as rest) -> Dag.has_edge g a b && ok rest
            in
            check_true "edges exist" (ok path);
            (match path with
            | first :: _ -> check_true "starts at entry" (Dag.preds g first = [])
            | [] -> ());
            match List.rev path with
            | last :: _ -> check_true "ends at exit" (Dag.succs g last = [])
            | [] -> ())
          (Paths.all_paths g));
    case "longest_path_through equals priority" (fun () ->
        let g = Fixtures.diamond4 in
        let weights = w g in
        let p = Levels.priority g weights in
        Dag.iter_tasks g (fun t ->
            check_float "through" p.(t) (Paths.longest_path_through g weights t)));
  ]

(* ------------------------------------------------------------------ *)
(* Series-parallel recognition                                         *)
(* ------------------------------------------------------------------ *)

let sp_tests =
  [
    case "chain is SP" (fun () ->
        check_true "sp" (Sp.is_series_parallel Fixtures.chain5));
    case "diamond is SP" (fun () ->
        check_true "sp" (Sp.is_series_parallel Fixtures.diamond4));
    case "fork-join is SP" (fun () ->
        check_true "sp" (Sp.is_series_parallel Fixtures.fork3));
    case "trivial graphs are SP" (fun () ->
        check_true "empty" (Sp.is_series_parallel Fixtures.empty);
        check_true "singleton" (Sp.is_series_parallel Fixtures.singleton));
    case "the N graph is not SP" (fun () ->
        (* a -> c, b -> c, b -> d : the classic forbidden pattern *)
        let g =
          Dag.of_edges ~exec:[| 1.; 1.; 1.; 1. |]
            [ (0, 2, 1.0); (1, 2, 1.0); (1, 3, 1.0) ]
        in
        check_true "not sp" (not (Sp.is_series_parallel g)));
    case "fft butterfly is not SP" (fun () ->
        check_true "not sp" (not (Sp.is_series_parallel Fixtures.fft8)));
    case "stencil is not SP" (fun () ->
        check_true "not sp" (not (Sp.is_series_parallel Fixtures.stencil33)));
    case "generated SP graphs are recognized" (fun () ->
        let rng = Rng.create ~seed:5 in
        for _ = 1 to 20 do
          let g = Random_dag.series_parallel ~rng ~tasks:30 () in
          check_true "sp" (Sp.is_series_parallel g)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* DOT export                                                          *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let dot_tests =
  [
    case "dot output mentions every task and edge" (fun () ->
        let s = Dot.to_string Fixtures.diamond4 in
        check_true "digraph header" (contains s "digraph");
        Dag.iter_tasks Fixtures.diamond4 (fun t ->
            check_true "node present" (contains s (Printf.sprintf "n%d [" t)));
        let arrows = ref 0 in
        String.iteri
          (fun i c ->
            if c = '-' && i + 1 < String.length s && s.[i + 1] = '>' then incr arrows)
          s;
        check_int "edges drawn" (Dag.n_edges Fixtures.diamond4) !arrows);
    case "highlight marks nodes" (fun () ->
        let s = Dot.to_string ~highlight:[ 0 ] Fixtures.chain3 in
        check_true "filled" (contains s "filled"));
  ]

let () =
  Alcotest.run "stream_dag"
    [
      ("builder", builder_tests);
      ("transform", transform_tests);
      ("topo", topo_tests);
      ("levels", levels_tests);
      ("width", width_tests);
      ("paths", paths_tests);
      ("series-parallel", sp_tests);
      ("dot", dot_tests);
    ]
