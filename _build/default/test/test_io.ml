open Test_support

let case = Fixtures.case
let check_int = Fixtures.check_int
let check_float = Fixtures.check_float
let check_true = Fixtures.check_true

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let must = function
  | Ok v -> v
  | Error e -> Alcotest.failf "parse error: %s" (Workflow_io.error_to_string e)

let must_fail ~line = function
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> check_int "error line" line e.Workflow_io.line

(* ------------------------------------------------------------------ *)
(* Workflow files                                                      *)
(* ------------------------------------------------------------------ *)

let workflow_text =
  {|# demo pipeline
workflow demo
task src 2.0
task mid 3.5      # inline comment
task out 1.0

edge src mid 1.0
edge mid out 0.5
|}

let workflow_tests =
  [
    case "parse a well-formed workflow" (fun () ->
        let dag = must (Workflow_io.parse_workflow workflow_text) in
        Alcotest.(check string) "name" "demo" (Dag.name dag);
        check_int "tasks" 3 (Dag.size dag);
        check_int "edges" 2 (Dag.n_edges dag);
        check_float "weight with comment" 3.5 (Dag.exec dag 1);
        Alcotest.(check string) "label" "mid" (Dag.label dag 1);
        check_true "edge volumes" (Dag.volume dag 0 1 = 1.0));
    case "round trip through print and parse" (fun () ->
        let original = Classic.fig2_graph in
        let reparsed = must (Workflow_io.parse_workflow (Workflow_io.print_workflow original)) in
        check_int "tasks" (Dag.size original) (Dag.size reparsed);
        check_int "edges" (Dag.n_edges original) (Dag.n_edges reparsed);
        Dag.iter_edges original (fun s d v ->
            check_float "volume preserved" v (Dag.volume reparsed s d));
        Dag.iter_tasks original (fun t ->
            check_float "exec preserved" (Dag.exec original t) (Dag.exec reparsed t)));
    case "file round trip" (fun () ->
        let path = Filename.temp_file "wf" ".txt" in
        Workflow_io.save_workflow path Fixtures.fork3;
        let dag = must (Workflow_io.load_workflow path) in
        Sys.remove path;
        check_int "tasks" (Dag.size Fixtures.fork3) (Dag.size dag));
    case "duplicate task is rejected with its line" (fun () ->
        must_fail ~line:3
          (Workflow_io.parse_workflow "task a 1.0\ntask b 1.0\ntask a 2.0\n"));
    case "edge to an unknown task is rejected" (fun () ->
        must_fail ~line:2
          (Workflow_io.parse_workflow "task a 1.0\nedge a ghost 1.0\n"));
    case "bad weight is rejected" (fun () ->
        must_fail ~line:1 (Workflow_io.parse_workflow "task a -3\n");
        must_fail ~line:1 (Workflow_io.parse_workflow "task a abc\n"));
    case "unknown keyword is rejected" (fun () ->
        must_fail ~line:1 (Workflow_io.parse_workflow "banana split\n"));
    case "cycles are rejected" (fun () ->
        must_fail ~line:0
          (Workflow_io.parse_workflow
             "task a 1\ntask b 1\nedge a b 1\nedge b a 1\n"));
    case "empty file is rejected" (fun () ->
        must_fail ~line:0 (Workflow_io.parse_workflow "# nothing\n"));
    case "missing file reports an I/O error" (fun () ->
        must_fail ~line:0 (Workflow_io.load_workflow "/nonexistent/zzz.wf"));
  ]

(* ------------------------------------------------------------------ *)
(* Platform files                                                      *)
(* ------------------------------------------------------------------ *)

let platform_text =
  {|platform lab
proc fast 2.0
proc slow 1.0
proc other 1.0
default-bandwidth 2.0
link fast slow 8.0
|}

let platform_tests =
  [
    case "parse a well-formed platform" (fun () ->
        let p = must (Workflow_io.parse_platform platform_text) in
        check_int "procs" 3 (Platform.size p);
        check_float "speed" 2.0 (Platform.speed p 0);
        check_float "explicit link" 8.0 (Platform.bandwidth p 0 1);
        check_float "default link" 2.0 (Platform.bandwidth p 0 2);
        check_float "symmetric" 8.0 (Platform.bandwidth p 1 0));
    case "platform round trip" (fun () ->
        let reparsed =
          must (Workflow_io.parse_platform (Workflow_io.print_platform Fixtures.hetero4))
        in
        check_int "procs" 4 (Platform.size reparsed);
        List.iter
          (fun u ->
            check_float "speed" (Platform.speed Fixtures.hetero4 u)
              (Platform.speed reparsed u);
            List.iter
              (fun v ->
                if u <> v then
                  check_float "bandwidth"
                    (Platform.bandwidth Fixtures.hetero4 u v)
                    (Platform.bandwidth reparsed u v))
              (Platform.procs Fixtures.hetero4))
          (Platform.procs Fixtures.hetero4));
    case "self link is rejected" (fun () ->
        must_fail ~line:2
          (Workflow_io.parse_platform "proc a 1.0\nlink a a 2.0\n"));
    case "unknown endpoint is rejected" (fun () ->
        must_fail ~line:2
          (Workflow_io.parse_platform "proc a 1.0\nlink a ghost 2.0\n"));
    case "duplicate processor is rejected" (fun () ->
        must_fail ~line:2
          (Workflow_io.parse_platform "proc a 1.0\nproc a 2.0\n"));
    case "platform with no processors is rejected" (fun () ->
        must_fail ~line:0 (Workflow_io.parse_platform "platform empty\n"));
  ]

(* ------------------------------------------------------------------ *)
(* Trace and SVG export                                                *)
(* ------------------------------------------------------------------ *)

let simple_run () =
  let m =
    Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 2) ~eps:0
  in
  let id task = { Replica.task; copy = 0 } in
  Mapping.assign m { Replica.id = id 0; proc = 0; sources = [] };
  Mapping.assign m { Replica.id = id 1; proc = 1; sources = [ (0, [ id 0 ]) ] };
  Mapping.assign m { Replica.id = id 2; proc = 0; sources = [ (1, [ id 1 ]) ] };
  (m, Engine.run m)

let export_tests =
  [
    case "chrome trace mentions every replica and transfer" (fun () ->
        let mapping, result = simple_run () in
        let json = Trace.to_chrome_json mapping result in
        check_true "valid-ish json" (contains json "\"traceEvents\"");
        check_true "task event" (contains json "t1(0)");
        check_true "transfer event" (contains json "t0(0) -> t1(0)");
        (* two processes declared *)
        check_true "P0 named" (contains json "\"name\":\"P0\"");
        check_true "P1 named" (contains json "\"name\":\"P1\""));
    case "chrome trace escapes quoted labels" (fun () ->
        let b = Dag.Builder.create ~name:"q" 1 in
        Dag.Builder.set_label b 0 {|the "src"|};
        let dag = Dag.Builder.build b in
        let m = Mapping.create ~dag ~platform:(Fixtures.uniform 1) ~eps:0 in
        Mapping.assign m
          { Replica.id = { Replica.task = 0; copy = 0 }; proc = 0; sources = [] };
        let json = Trace.to_chrome_json m (Engine.run m) in
        check_true "quotes escaped" (contains json {|the \"src\"|}));
    case "svg gantt contains lanes, boxes and titles" (fun () ->
        let mapping, result = simple_run () in
        let svg = Svg_gantt.render mapping result in
        check_true "svg header" (contains svg "<svg");
        check_true "processor label" (contains svg ">P0<");
        check_true "execution box" (contains svg "<rect");
        check_true "tooltip" (contains svg "<title>t0(0)"));
    case "svg gantt file export" (fun () ->
        let mapping, result = simple_run () in
        let path = Filename.temp_file "gantt" ".svg" in
        Svg_gantt.save path mapping result;
        let ic = open_in_bin path in
        let size = in_channel_length ic in
        close_in ic;
        Sys.remove path;
        check_true "non-empty" (size > 200));
    case "trace of a multi-item run has one event set per item" (fun () ->
        let mapping, _ = simple_run () in
        let result = Engine.run ~n_items:2 ~period:5.0 mapping in
        let json = Trace.to_chrome_json mapping result in
        check_true "item 0" (contains json "#0");
        check_true "item 1" (contains json "#1"));
  ]

(* ------------------------------------------------------------------ *)
(* Mapping files                                                       *)
(* ------------------------------------------------------------------ *)

let must_mapping = function
  | Ok m -> m
  | Error e -> Alcotest.failf "mapping parse error: %s" (Mapping_io.error_to_string e)

let mapping_fail ~line = function
  | Ok _ -> Alcotest.fail "expected a mapping parse error"
  | Error e -> check_int "error line" line e.Mapping_io.line

let scheduled_fig2 () =
  let dag = Classic.fig2_graph and platform = Classic.fig2_platform ~m:10 in
  let prob = Types.problem ~dag ~platform ~eps:1 ~throughput:0.05 in
  (dag, platform, Fixtures.must_schedule `Rltf prob)

let mapping_io_tests =
  [
    case "round trip preserves the whole schedule" (fun () ->
        let dag, platform, original = scheduled_fig2 () in
        let reparsed =
          must_mapping (Mapping_io.parse ~dag ~platform (Mapping_io.print original))
        in
        check_int "eps" (Mapping.eps original) (Mapping.eps reparsed);
        Mapping.iter original (fun r ->
            let r' =
              Mapping.replica_exn reparsed r.Replica.id.Replica.task
                r.Replica.id.Replica.copy
            in
            check_int "same processor" r.Replica.proc r'.Replica.proc;
            List.iter2
              (fun (p, ids) (p', ids') ->
                check_int "same pred" p p';
                check_int "same source count" (List.length ids) (List.length ids'))
              r.Replica.sources r'.Replica.sources);
        (* metrics agree *)
        check_int "stages" (Metrics.stage_depth original) (Metrics.stage_depth reparsed);
        check_int "messages" (Mapping.n_messages original) (Mapping.n_messages reparsed));
    case "file round trip" (fun () ->
        let dag, platform, original = scheduled_fig2 () in
        let path = Filename.temp_file "mapping" ".txt" in
        Mapping_io.save path original;
        let reparsed = must_mapping (Mapping_io.load ~dag ~platform path) in
        Sys.remove path;
        check_float "same latency bound"
          (Metrics.latency_bound original ~throughput:0.05)
          (Metrics.latency_bound reparsed ~throughput:0.05));
    case "missing header is rejected" (fun () ->
        let dag = Fixtures.chain3 and platform = Fixtures.uniform 4 in
        mapping_fail ~line:1 (Mapping_io.parse ~dag ~platform "replica 0 0 on 0\n"));
    case "incomplete mappings are rejected" (fun () ->
        let dag = Fixtures.chain3 and platform = Fixtures.uniform 4 in
        mapping_fail ~line:0
          (Mapping_io.parse ~dag ~platform "mapping eps 0\nreplica 0 0 on 0\n"));
    case "bad source groups are rejected with their line" (fun () ->
        let dag = Fixtures.chain3 and platform = Fixtures.uniform 4 in
        mapping_fail ~line:3
          (Mapping_io.parse ~dag ~platform
             "mapping eps 0\nreplica 0 0 on 0\nreplica 1 0 on 1 from nonsense\n"));
    case "structural violations are caught on replay" (fun () ->
        let dag = Fixtures.chain3 and platform = Fixtures.uniform 4 in
        (* two replicas of one task on the same processor *)
        mapping_fail ~line:3
          (Mapping_io.parse ~dag ~platform
             "mapping eps 1\nreplica 0 0 on 0\nreplica 0 1 on 0\n"));
  ]

let () =
  Alcotest.run "workflow_io-and-exports"
    [
      ("workflow-files", workflow_tests);
      ("platform-files", platform_tests);
      ("exports", export_tests);
      ("mapping-files", mapping_io_tests);
    ]
